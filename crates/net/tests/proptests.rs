//! Property-based fuzzing of the wire protocol: every message kind
//! round-trips through its frame encoding, and hostile bytes (truncated,
//! corrupted, or random) always produce typed [`NetError`]s — never a
//! panic, never a silent wrong decode.

use goofi_core::service::{
    CampaignRef, ClassSavings, ExecOptions, JobSpec, JobStatus, JobSummary, ServiceEvent,
};
use goofi_core::store::{ExperimentData, ExperimentRecord};
use goofi_core::{Campaign, LocationSelector, TargetEvent};
use goofi_net::{
    read_frame, Event, Frame, IndexedRecord, JobListEntry, NetError, Request, Response, WireError,
    WorkerRequest, WorkerResponse, PROTOCOL_VERSION,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_-]{0,14}"
}

fn arb_campaign() -> impl Strategy<Value = Campaign> {
    (
        (arb_name(), arb_name(), arb_name()),
        (1usize..500, any::<u64>(), 0u64..50, 1u64..100),
    )
        .prop_map(
            |((name, target, workload), (experiments, seed, start, span))| {
                Campaign::builder(name, target, workload)
                    .select(LocationSelector::Chain {
                        chain: "cpu".into(),
                        field: None,
                    })
                    .window(start, start + span)
                    .experiments(experiments)
                    .seed(seed)
                    .build()
                    .expect("valid campaign")
            },
        )
}

fn arb_options() -> impl Strategy<Value = ExecOptions> {
    (1usize..8, any::<bool>(), any::<bool>()).prop_map(|(workers, checkpoint, class)| {
        ExecOptions::default()
            .workers(workers)
            .checkpoint(checkpoint)
            .class_execution(class)
    })
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        prop_oneof![
            arb_name().prop_map(CampaignRef::Name),
            arb_campaign().prop_map(CampaignRef::Inline),
        ],
        arb_options(),
        any::<bool>(),
    )
        .prop_map(|(campaign, options, resume)| {
            JobSpec::new(campaign).options(options).resume(resume)
        })
}

fn arb_record() -> impl Strategy<Value = ExperimentRecord> {
    (
        arb_name(),
        arb_name(),
        prop::collection::vec(any::<u32>(), 0..4),
        prop::collection::vec(any::<u8>(), 0..16),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(
            |(name, campaign, outputs, state_vector, iterations, instructions)| ExperimentRecord {
                name,
                parent: None,
                campaign,
                data: ExperimentData {
                    fault: None,
                    termination: TargetEvent::Halted,
                    outputs,
                    iterations,
                    instructions,
                    detail_trace: None,
                },
                state_vector,
            },
        )
}

fn arb_status() -> impl Strategy<Value = JobStatus> {
    prop_oneof![
        Just(JobStatus::Queued),
        (0usize..100, 100usize..200)
            .prop_map(|(completed, total)| JobStatus::Running { completed, total }),
        arb_name().prop_map(|error| JobStatus::Failed { error }),
        (0usize..100).prop_map(|completed| JobStatus::Cancelled { completed }),
        (arb_name(), 1usize..50, 0usize..10).prop_map(|(campaign, experiments, pruned)| {
            let mut summary = JobSummary::new(campaign, 2);
            summary.experiments = experiments;
            summary.pruned = pruned;
            summary.class_savings = Some(ClassSavings {
                representatives: 3,
                fanned: 9,
            });
            JobStatus::Done {
                summary: Box::new(summary),
            }
        }),
    ]
}

fn arb_service_event() -> impl Strategy<Value = ServiceEvent> {
    prop_oneof![
        (arb_name(), arb_name()).prop_map(|(job, campaign)| ServiceEvent::Queued { job, campaign }),
        (arb_name(), 1usize..500)
            .prop_map(|(campaign, total)| ServiceEvent::Started { campaign, total }),
        (0usize..500, 1usize..500, any::<bool>()).prop_map(|(completed, total, pruned)| {
            ServiceEvent::Progress {
                completed,
                total,
                pruned,
            }
        }),
        Just(ServiceEvent::Paused),
        Just(ServiceEvent::Resumed),
        (0usize..8, any::<u32>())
            .prop_map(|(worker, pid)| ServiceEvent::WorkerSpawned { worker, pid }),
        (0usize..8, 0usize..64)
            .prop_map(|(worker, reissued)| ServiceEvent::WorkerLost { worker, reissued }),
        (0usize..500, any::<bool>())
            .prop_map(|(completed, stopped)| ServiceEvent::Finished { completed, stopped }),
        arb_name().prop_map(|error| ServiceEvent::Failed { error }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u16>().prop_map(|version| Request::Hello { version }),
        arb_spec().prop_map(|spec| Request::Submit { spec }),
        arb_name().prop_map(|job| Request::Status { job }),
        (arb_name(), any::<bool>())
            .prop_map(|(job, from_start)| Request::Watch { job, from_start }),
        arb_name().prop_map(|job| Request::Cancel { job }),
        Just(Request::Jobs),
        Just(Request::Shutdown),
    ]
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    prop_oneof![
        (any::<u16>(), any::<u16>())
            .prop_map(|(got, want)| WireError::VersionMismatch { got, want }),
        arb_name().prop_map(|job| WireError::NoSuchJob { job }),
        arb_name().prop_map(|message| WireError::Rejected { message }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u16>().prop_map(|version| Response::Hello { version }),
        arb_name().prop_map(|job| Response::Submitted { job }),
        (arb_name(), arb_status()).prop_map(|(job, status)| Response::Status { job, status }),
        arb_name().prop_map(|job| Response::Watching { job }),
        (arb_name(), any::<bool>())
            .prop_map(|(job, delivered)| Response::Cancelled { job, delivered }),
        prop::collection::vec((arb_name(), arb_status()), 0..4).prop_map(|rows| Response::Jobs {
            jobs: rows
                .into_iter()
                .map(|(job, status)| JobListEntry { job, status })
                .collect(),
        }),
        Just(Response::ShuttingDown),
        arb_wire_error().prop_map(|error| Response::Error { error }),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        arb_service_event().prop_map(|event| Event::Service { event }),
        Just(Event::EndOfStream),
    ]
}

fn arb_worker_request() -> impl Strategy<Value = WorkerRequest> {
    prop_oneof![
        (arb_campaign(), arb_options())
            .prop_map(|(campaign, options)| WorkerRequest::Init { campaign, options }),
        (any::<u64>(), prop::collection::vec(0usize..1000, 0..32))
            .prop_map(|(id, indices)| WorkerRequest::RunChunk { id, indices }),
        Just(WorkerRequest::Shutdown),
    ]
}

fn arb_worker_response() -> impl Strategy<Value = WorkerResponse> {
    prop_oneof![
        (
            any::<u32>(),
            1usize..500,
            arb_record(),
            prop::collection::vec(any::<bool>(), 0..32),
            prop::collection::vec(any::<bool>(), 0..32),
        )
            .prop_map(|(pid, experiments, reference, prunable, predicted)| {
                WorkerResponse::Ready {
                    pid,
                    experiments,
                    reference: Box::new(reference),
                    prunable,
                    predicted,
                    static_analysis: None,
                }
            }),
        (
            any::<u64>(),
            prop::collection::vec((0usize..1000, arb_record()), 0..4)
        )
            .prop_map(|(id, rows)| WorkerResponse::ChunkDone {
                id,
                rows: rows
                    .into_iter()
                    .map(|(index, record)| IndexedRecord { index, record })
                    .collect(),
            }),
        arb_name().prop_map(|error| WorkerResponse::Failed { error }),
    ]
}

/// Round-trips a message through its frame encoding and the full binary
/// wire encoding, checking every layer reproduces the original.
macro_rules! check_roundtrip {
    ($msg:expr, $ty:ty) => {{
        let msg = $msg;
        let frame = msg.to_frame().expect("encodes");
        prop_assert_eq!(frame.version, PROTOCOL_VERSION);
        // Frame -> message.
        let back = <$ty>::from_frame(&frame).expect("frame decodes");
        prop_assert_eq!(&back, &msg);
        // Bytes -> frame -> message.
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).expect("bytes decode");
        prop_assert_eq!(used, bytes.len());
        let back = <$ty>::from_frame(&decoded).expect("decoded frame decodes");
        prop_assert_eq!(&back, &msg);
        // Stream -> frame -> message.
        let mut cursor = &bytes[..];
        let streamed = read_frame(&mut cursor).expect("stream decodes");
        let back = <$ty>::from_frame(&streamed).expect("streamed frame decodes");
        prop_assert_eq!(&back, &msg);
        bytes
    }};
}

proptest! {
    #[test]
    fn request_roundtrip(msg in arb_request()) {
        check_roundtrip!(msg, Request);
    }

    #[test]
    fn response_roundtrip(msg in arb_response()) {
        check_roundtrip!(msg, Response);
    }

    #[test]
    fn event_roundtrip(msg in arb_event()) {
        check_roundtrip!(msg, Event);
    }

    #[test]
    fn worker_request_roundtrip(msg in arb_worker_request()) {
        check_roundtrip!(msg, WorkerRequest);
    }

    #[test]
    fn worker_response_roundtrip(msg in arb_worker_response()) {
        check_roundtrip!(msg, WorkerResponse);
    }

    /// Every prefix of a valid encoding fails with `Truncated` (buffer
    /// decode) or `Truncated`/`ClosedStream` (stream decode) — and never
    /// panics or yields a frame.
    #[test]
    fn truncation_yields_typed_errors(msg in arb_request(), frac in 0usize..1000) {
        let bytes = msg.to_frame().expect("encodes").encode();
        let cut = bytes.len() * frac / 1000;
        prop_assert!(cut < bytes.len());
        match Frame::decode(&bytes[..cut]) {
            Err(NetError::Truncated { wanted, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(wanted > cut);
            }
            other => prop_assert!(false, "cut at {}: {:?}", cut, other),
        }
        let mut cursor = &bytes[..cut];
        match read_frame(&mut cursor) {
            Err(NetError::Truncated { .. }) => {}
            Err(NetError::ClosedStream) => prop_assert_eq!(cut, 0),
            other => prop_assert!(false, "stream cut at {}: {:?}", cut, other),
        }
    }

    /// Any single corrupted byte in a valid encoding is caught by one of
    /// the typed checks — the original message never decodes silently.
    #[test]
    fn corruption_yields_typed_errors(msg in arb_response(), pos_frac in 0usize..1000, flip in 1u8..=255) {
        let bytes = msg.to_frame().expect("encodes").encode();
        let pos = bytes.len() * pos_frac / 1000;
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        let outcome = Frame::decode(&bad).and_then(|(frame, _)| Response::from_frame(&frame));
        match outcome {
            Err(
                NetError::BadMagic(_)
                | NetError::VersionMismatch { .. }
                | NetError::BadKind(_)
                | NetError::Truncated { .. }
                | NetError::CorruptPayload { .. }
                | NetError::TooLarge { .. }
                | NetError::WrongKind { .. }
                | NetError::Codec(_),
            ) => {}
            Err(other) => prop_assert!(false, "untyped error at {}: {:?}", pos, other),
            Ok(back) => prop_assert!(false, "corrupt byte at {} decoded silently: {:?}", pos, back),
        }
    }

    /// Random garbage never panics the decoder: it either fails with a
    /// typed error or (astronomically unlikely) parses as a real frame.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Frame::decode(&bytes);
        let mut cursor = &bytes[..];
        let _ = read_frame(&mut cursor);
    }
}
