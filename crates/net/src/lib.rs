//! # goofi-net — the campaign-service wire protocol
//!
//! A vendored, offline-friendly binary protocol connecting GOOFI
//! clients, the `goofi-server` daemon and its worker processes. One
//! frame format serves all three:
//!
//! ```text
//! +------+---------+------+---------+---------+----------------+
//! | GFRM | version | kind |   len   |  crc32  |  payload JSON  |
//! | 4 B  |  u16 LE | u8   | u32 LE  | u32 LE  |  len bytes     |
//! +------+---------+------+---------+---------+----------------+
//! ```
//!
//! * the magic pins the stream format; anything else is
//!   [`NetError::BadMagic`] immediately (a stray HTTP client, say);
//! * the header version lets the server reject a mismatched peer with a
//!   *typed* [`WireError::VersionMismatch`] response instead of a decode
//!   failure (the header is version-independent by construction);
//! * the CRC32 catches truncated or corrupted payloads before any JSON
//!   parsing sees them — [`NetError::CorruptPayload`], never a panic;
//! * payloads are serde-encoded message enums: [`Request`]/[`Response`]
//!   between clients and the daemon (with [`Event`] frames streamed for
//!   `watch`), [`WorkerRequest`]/[`WorkerResponse`] between the daemon
//!   and its worker children over stdin/stdout pipes.
//!
//! The message enums are `#[non_exhaustive]` and constitute the single
//! public protocol API: new message kinds are additive, and
//! [`PROTOCOL_VERSION`] is bumped only when existing encodings change.
//!
//! [`RemoteService`] implements `goofi-core`'s `CampaignService` trait
//! over this protocol, so the CLI drives a remote daemon through exactly
//! the code path it uses for local runs.

#![warn(missing_docs)]

mod client;
mod crc;
mod frame;
mod message;

pub use client::RemoteService;
pub use crc::crc32;
pub use frame::{
    read_frame, write_frame, Frame, FrameKind, NetError, NetResult, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use message::{
    Event, IndexedRecord, JobListEntry, Request, Response, WireError, WorkerRequest, WorkerResponse,
};
