//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same
//! checksum the storage engine's WAL uses, implemented locally so the
//! wire crate stays dependency-free.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"goofi frame payload";
        let good = crc32(data);
        let mut bad = data.to_vec();
        bad[4] ^= 0x01;
        assert_ne!(crc32(&bad), good);
    }
}
