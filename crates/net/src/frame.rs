//! The binary frame envelope: magic, version, kind, length, CRC.

use crate::crc::crc32;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// The protocol version this build speaks. Bumped only when existing
/// frame or message encodings change; new message kinds are additive
/// (the enums are `#[non_exhaustive]`).
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame's payload length. Larger declared lengths are
/// rejected before any allocation — a corrupted length field must not
/// become an out-of-memory.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const MAGIC: [u8; 4] = *b"GFRM";
const HEADER_LEN: usize = 4 + 2 + 1 + 4 + 4;

/// What a frame carries, from the header's kind byte.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → daemon request.
    Request,
    /// Daemon → client response.
    Response,
    /// Daemon → client subscription event.
    Event,
    /// Daemon → worker-process command.
    WorkerRequest,
    /// Worker process → daemon reply.
    WorkerResponse,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Event => 3,
            FrameKind::WorkerRequest => 4,
            FrameKind::WorkerResponse => 5,
        }
    }

    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Request,
            2 => FrameKind::Response,
            3 => FrameKind::Event,
            4 => FrameKind::WorkerRequest,
            5 => FrameKind::WorkerResponse,
            _ => return None,
        })
    }
}

/// Typed decode/transport errors. Every malformed input maps to one of
/// these — framing never panics on hostile bytes.
#[non_exhaustive]
#[derive(Debug)]
pub enum NetError {
    /// The stream does not start with the `GFRM` magic.
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version in the received frame.
        got: u16,
        /// The version this build speaks.
        want: u16,
    },
    /// Unknown frame-kind byte.
    BadKind(u8),
    /// The frame ended before its declared length.
    Truncated {
        /// Bytes the header promised.
        wanted: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload checksum does not match.
    CorruptPayload {
        /// CRC32 from the header.
        expected: u32,
        /// CRC32 of the received payload.
        found: u32,
    },
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    TooLarge {
        /// Declared length.
        len: u32,
        /// The limit.
        max: u32,
    },
    /// The payload failed to encode or decode as the expected message.
    Codec(String),
    /// The frame carried a different message kind than expected.
    WrongKind {
        /// The kind expected by the caller.
        expected: FrameKind,
        /// The kind received.
        got: FrameKind,
    },
    /// The peer closed the stream at a frame boundary.
    ClosedStream,
    /// Transport I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:?} (expected \"GFRM\")"),
            NetError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{got}, this build v{want}"
                )
            }
            NetError::BadKind(b) => write!(f, "unknown frame kind {b}"),
            NetError::Truncated { wanted, got } => {
                write!(f, "truncated frame: wanted {wanted} bytes, got {got}")
            }
            NetError::CorruptPayload { expected, found } => write!(
                f,
                "corrupt frame payload: crc32 {found:#010x}, header says {expected:#010x}"
            ),
            NetError::TooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            NetError::Codec(msg) => write!(f, "message codec error: {msg}"),
            NetError::WrongKind { expected, got } => {
                write!(f, "expected a {expected:?} frame, got {got:?}")
            }
            NetError::ClosedStream => write!(f, "peer closed the stream"),
            NetError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Wire-crate result type.
pub type NetResult<T> = Result<T, NetError>;

/// One decoded frame envelope. The payload is opaque bytes here; the
/// typed message layer ([`crate::Request`] & friends) decodes it after
/// the version check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version from the header.
    pub version: u16,
    /// What the payload is.
    pub kind: FrameKind,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A new frame at [`PROTOCOL_VERSION`].
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Frame {
        Frame {
            version: PROTOCOL_VERSION,
            kind,
            payload,
        }
    }

    /// Serializes `msg` into a frame of `kind`.
    ///
    /// # Errors
    ///
    /// [`NetError::Codec`] on serialization failure, [`NetError::TooLarge`]
    /// when the encoded message exceeds [`MAX_FRAME_LEN`].
    pub fn encode_msg<T: Serialize>(kind: FrameKind, msg: &T) -> NetResult<Frame> {
        let json = serde_json::to_string(msg).map_err(|e| NetError::Codec(e.to_string()))?;
        let payload = json.into_bytes();
        if payload.len() as u64 > MAX_FRAME_LEN as u64 {
            return Err(NetError::TooLarge {
                len: payload.len() as u32,
                max: MAX_FRAME_LEN,
            });
        }
        Ok(Frame::new(kind, payload))
    }

    /// Decodes the payload as a message of `kind`, enforcing the version
    /// and kind checks.
    ///
    /// # Errors
    ///
    /// [`NetError::VersionMismatch`] for frames from a different protocol
    /// version, [`NetError::WrongKind`] for mismatched frame kinds and
    /// [`NetError::Codec`] for undecodable payloads.
    pub fn decode_msg<T: Deserialize>(&self, kind: FrameKind) -> NetResult<T> {
        if self.version != PROTOCOL_VERSION {
            return Err(NetError::VersionMismatch {
                got: self.version,
                want: PROTOCOL_VERSION,
            });
        }
        if self.kind != kind {
            return Err(NetError::WrongKind {
                expected: kind,
                got: self.kind,
            });
        }
        let text = std::str::from_utf8(&self.payload)
            .map_err(|e| NetError::Codec(format!("payload is not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| NetError::Codec(e.to_string()))
    }

    /// The frame's full wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.kind.to_u8());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one frame from the start of `buf`, returning it and the
    /// bytes consumed.
    ///
    /// # Errors
    ///
    /// Every framing violation maps to a typed [`NetError`]; hostile
    /// bytes never panic. Version mismatches are *not* rejected here —
    /// the header layout is version-independent, so the caller can still
    /// answer a mismatched peer with a typed error response.
    pub fn decode(buf: &[u8]) -> NetResult<(Frame, usize)> {
        if buf.len() < HEADER_LEN {
            return Err(NetError::Truncated {
                wanted: HEADER_LEN,
                got: buf.len(),
            });
        }
        let magic: [u8; 4] = buf[0..4].try_into().expect("4-byte slice");
        if magic != MAGIC {
            return Err(NetError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().expect("2-byte slice"));
        let kind = FrameKind::from_u8(buf[6]).ok_or(NetError::BadKind(buf[6]))?;
        let len = u32::from_le_bytes(buf[7..11].try_into().expect("4-byte slice"));
        if len > MAX_FRAME_LEN {
            return Err(NetError::TooLarge {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        let expected_crc = u32::from_le_bytes(buf[11..15].try_into().expect("4-byte slice"));
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Err(NetError::Truncated {
                wanted: total,
                got: buf.len(),
            });
        }
        let payload = buf[HEADER_LEN..total].to_vec();
        let found = crc32(&payload);
        if found != expected_crc {
            return Err(NetError::CorruptPayload {
                expected: expected_crc,
                found,
            });
        }
        Ok((
            Frame {
                version,
                kind,
                payload,
            },
            total,
        ))
    }
}

/// Writes one frame and flushes.
///
/// # Errors
///
/// [`NetError::Io`] on transport failure.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> NetResult<()> {
    w.write_all(&frame.encode())?;
    w.flush()?;
    Ok(())
}

/// Reads exactly one frame.
///
/// # Errors
///
/// [`NetError::ClosedStream`] on EOF at a frame boundary (the clean
/// shutdown case); [`NetError::Truncated`] on EOF inside a frame; the
/// other [`NetError`] variants for malformed headers or payloads.
pub fn read_frame(r: &mut impl Read) -> NetResult<Frame> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_full(r, &mut header)?;
    if got == 0 {
        return Err(NetError::ClosedStream);
    }
    if got < HEADER_LEN {
        return Err(NetError::Truncated {
            wanted: HEADER_LEN,
            got,
        });
    }
    let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
    let kind = FrameKind::from_u8(header[6]).ok_or(NetError::BadKind(header[6]))?;
    let len = u32::from_le_bytes(header[7..11].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(NetError::TooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let expected_crc = u32::from_le_bytes(header[11..15].try_into().expect("4-byte slice"));
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload)?;
    if got < payload.len() {
        return Err(NetError::Truncated {
            wanted: HEADER_LEN + len as usize,
            got: HEADER_LEN + got,
        });
    }
    let found = crc32(&payload);
    if found != expected_crc {
        return Err(NetError::CorruptPayload {
            expected: expected_crc,
            found,
        });
    }
    Ok(Frame {
        version,
        kind,
        payload,
    })
}

/// Reads until `buf` is full or EOF; returns the bytes read.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> NetResult<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_a_buffer() {
        let frame = Frame::new(FrameKind::Request, b"{\"x\":1}".to_vec());
        let bytes = frame.encode();
        let (back, used) = Frame::decode(&bytes).expect("decodes");
        assert_eq!(back, frame);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn roundtrip_through_a_stream() {
        let mut buf = Vec::new();
        let a = Frame::new(FrameKind::Event, b"abc".to_vec());
        let b = Frame::new(FrameKind::Response, Vec::new());
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap(), b);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::ClosedStream)
        ));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = Frame::new(FrameKind::Request, vec![1, 2, 3]).encode();
        bytes[0] = b'X';
        assert!(matches!(Frame::decode(&bytes), Err(NetError::BadMagic(_))));
    }

    #[test]
    fn corrupt_payload_is_typed() {
        let mut bytes = Frame::new(FrameKind::Request, vec![1, 2, 3]).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::CorruptPayload { .. })
        ));
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let bytes = Frame::new(FrameKind::Event, vec![9; 40]).encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(NetError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        let mut bytes = Frame::new(FrameKind::Request, vec![0; 8]).encode();
        bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::TooLarge { .. })
        ));
        let mut cursor = &bytes[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::TooLarge { .. })
        ));
    }

    #[test]
    fn foreign_version_decodes_as_envelope_but_not_as_message() {
        let mut frame = Frame::new(FrameKind::Request, b"{}".to_vec());
        frame.version = PROTOCOL_VERSION + 1;
        let bytes = frame.encode();
        let (back, _) = Frame::decode(&bytes).expect("envelope is version-independent");
        assert_eq!(back.version, PROTOCOL_VERSION + 1);
        let err = back
            .decode_msg::<crate::Request>(FrameKind::Request)
            .unwrap_err();
        assert!(matches!(err, NetError::VersionMismatch { .. }));
    }
}
