//! [`RemoteService`] — the client side of the wire protocol, as a
//! `CampaignService`. The CLI's `submit` / `watch` / `attach` / `cancel`
//! verbs are this struct plus the same renderer `goofi run` uses.

use crate::frame::{read_frame, write_frame, NetError, PROTOCOL_VERSION};
use crate::message::{Event, Request, Response};
use crossbeam::channel::unbounded;
use goofi_core::service::{CampaignService, EventStream, JobId, JobSpec, JobStatus};
use goofi_core::{GoofiError, Result};
use std::net::TcpStream;

/// A campaign service behind a `goofi-server` daemon. Each request uses
/// its own connection (`watch` holds one open for the event stream), so
/// a `RemoteService` is cheap and carries no connection state.
pub struct RemoteService {
    addr: String,
}

fn transport(e: NetError) -> GoofiError {
    GoofiError::Protocol(e.to_string())
}

fn rejected(r: Response) -> GoofiError {
    match r {
        Response::Error { error } => GoofiError::Service(error.to_string()),
        other => GoofiError::Protocol(format!("unexpected server response: {other:?}")),
    }
}

impl RemoteService {
    /// Connects to a daemon at `addr` (`host:port`) and verifies the
    /// protocol version with a `Hello` round trip.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Service`] when the daemon is unreachable or speaks
    /// a different protocol version.
    pub fn connect(addr: impl Into<String>) -> Result<RemoteService> {
        let mut svc = RemoteService { addr: addr.into() };
        match svc.roundtrip(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Hello { .. } => Ok(svc),
            other => Err(rejected(other)),
        }
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures; a daemon that exits before answering counts
    /// as success.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.roundtrip(&Request::Shutdown) {
            Ok(Response::ShuttingDown) => Ok(()),
            Ok(other) => Err(rejected(other)),
            // The daemon may exit between answering and closing.
            Err(_) => Ok(()),
        }
    }

    fn open(&self) -> Result<TcpStream> {
        TcpStream::connect(&self.addr).map_err(|e| {
            GoofiError::Service(format!("cannot reach goofi server at {}: {e}", self.addr))
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response> {
        let mut stream = self.open()?;
        write_frame(&mut stream, &req.to_frame().map_err(transport)?).map_err(transport)?;
        let frame = read_frame(&mut stream).map_err(transport)?;
        Response::from_frame(&frame).map_err(transport)
    }
}

impl CampaignService for RemoteService {
    fn submit(&mut self, spec: JobSpec) -> Result<JobId> {
        match self.roundtrip(&Request::Submit { spec })? {
            Response::Submitted { job } => Ok(job),
            other => Err(rejected(other)),
        }
    }

    fn status(&mut self, job: &str) -> Result<JobStatus> {
        match self.roundtrip(&Request::Status {
            job: job.to_owned(),
        })? {
            Response::Status { status, .. } => Ok(status),
            other => Err(rejected(other)),
        }
    }

    fn watch(&mut self, job: &str, from_start: bool) -> Result<EventStream> {
        let mut stream = self.open()?;
        let req = Request::Watch {
            job: job.to_owned(),
            from_start,
        };
        write_frame(&mut stream, &req.to_frame().map_err(transport)?).map_err(transport)?;
        let frame = read_frame(&mut stream).map_err(transport)?;
        match Response::from_frame(&frame).map_err(transport)? {
            Response::Watching { .. } => {}
            other => return Err(rejected(other)),
        }
        // Pump event frames into the stream on a reader thread; the
        // stream ends at the terminal event, EndOfStream, or disconnect.
        let (tx, rx) = unbounded();
        std::thread::spawn(move || {
            while let Ok(frame) = read_frame(&mut stream) {
                match Event::from_frame(&frame) {
                    Ok(Event::Service { event }) => {
                        if tx.send(event).is_err() {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        });
        Ok(EventStream::from_receiver(rx))
    }

    fn cancel(&mut self, job: &str) -> Result<bool> {
        match self.roundtrip(&Request::Cancel {
            job: job.to_owned(),
        })? {
            Response::Cancelled { delivered, .. } => Ok(delivered),
            other => Err(rejected(other)),
        }
    }

    fn jobs(&mut self) -> Result<Vec<(JobId, JobStatus)>> {
        match self.roundtrip(&Request::Jobs)? {
            Response::Jobs { jobs } => Ok(jobs.into_iter().map(|e| (e.job, e.status)).collect()),
            other => Err(rejected(other)),
        }
    }
}
