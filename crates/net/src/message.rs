//! The typed protocol messages — the single public protocol API.
//!
//! All enums are `#[non_exhaustive]`: adding a message kind is a
//! compatible change (old peers answer unknown requests with a typed
//! [`WireError`]); changing an existing encoding bumps
//! [`crate::PROTOCOL_VERSION`].

use crate::frame::{Frame, FrameKind, NetResult};
use goofi_core::service::{ExecOptions, JobId, JobSpec, JobStatus, ServiceEvent};
use goofi_core::store::ExperimentRecord;
use goofi_core::{Campaign, StaticAnalysis};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Client → daemon requests.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Version negotiation; every connection may open with one.
    Hello {
        /// The client's protocol version.
        version: u16,
    },
    /// Submit a campaign for execution.
    Submit {
        /// The submission.
        spec: JobSpec,
    },
    /// Ask for a job's status.
    Status {
        /// The job.
        job: JobId,
    },
    /// Subscribe to a job's event stream. The response is
    /// [`Response::Watching`], followed by [`Event`] frames.
    Watch {
        /// The job.
        job: JobId,
        /// Replay buffered history first (`watch`) or follow from now
        /// (`attach`).
        from_start: bool,
    },
    /// Stop a running job at the next experiment boundary.
    Cancel {
        /// The job.
        job: JobId,
    },
    /// List all jobs.
    Jobs,
    /// Ask the daemon to shut down once the connection closes.
    Shutdown,
}

/// One row of a [`Response::Jobs`] listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobListEntry {
    /// The job id.
    pub job: JobId,
    /// Its status.
    pub status: JobStatus,
}

/// Daemon → client responses, one per request.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Version accepted; the daemon's own version.
    Hello {
        /// The daemon's protocol version.
        version: u16,
    },
    /// The submission was accepted.
    Submitted {
        /// The assigned job id.
        job: JobId,
    },
    /// Status answer.
    Status {
        /// The job.
        job: JobId,
        /// Its status.
        status: JobStatus,
    },
    /// Subscription accepted; [`Event`] frames follow on this connection.
    Watching {
        /// The job.
        job: JobId,
    },
    /// Cancel answer.
    Cancelled {
        /// The job.
        job: JobId,
        /// Whether the stop command reached a still-running campaign.
        delivered: bool,
    },
    /// Jobs listing.
    Jobs {
        /// All known jobs, in submission order.
        jobs: Vec<JobListEntry>,
    },
    /// The daemon will exit.
    ShuttingDown,
    /// The request failed.
    Error {
        /// Why.
        error: WireError,
    },
}

/// Typed request failures — a version mismatch is an answer, not a
/// decode failure.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    /// The client's protocol version is not this daemon's.
    VersionMismatch {
        /// The client's version.
        got: u16,
        /// The daemon's version.
        want: u16,
    },
    /// The named job does not exist.
    NoSuchJob {
        /// The job id asked for.
        job: String,
    },
    /// The request was understood but refused (unknown campaign,
    /// unknown workload, storage failure...). Carries the service's own
    /// error text.
    Rejected {
        /// The error text.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::VersionMismatch { got, want } => {
                write!(f, "server speaks protocol v{want}, client sent v{got}")
            }
            WireError::NoSuchJob { job } => write!(f, "no such job `{job}`"),
            WireError::Rejected { message } => f.write_str(message),
        }
    }
}

/// Daemon → client subscription stream items.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// One job event.
    Service {
        /// The event.
        event: ServiceEvent,
    },
    /// The stream is complete; no further events will follow. Lets a
    /// client distinguish a finished stream from a dropped connection.
    EndOfStream,
}

/// Daemon → worker-process commands (over the child's stdin).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerRequest {
    /// Prepare the campaign: build the target, generate the fault list,
    /// run the reference, build the checkpoint cache. Fault-list
    /// generation is seeded, so every worker derives the identical plan.
    Init {
        /// The campaign to prepare.
        campaign: Campaign,
        /// Execution options (class execution is ignored by workers).
        options: ExecOptions,
    },
    /// Execute a chunk of experiment indices.
    RunChunk {
        /// Chunk id, echoed in the reply.
        id: u64,
        /// Fault-list indices to execute, ascending.
        indices: Vec<usize>,
    },
    /// Exit cleanly.
    Shutdown,
}

/// One experiment row tagged with its fault-list index, so the server's
/// reorder buffer can stream rows to the store in fault-list order no
/// matter which worker finished first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexedRecord {
    /// Fault-list index.
    pub index: usize,
    /// The logged row, byte-identical to a single-process run's.
    pub record: ExperimentRecord,
}

/// Worker process → daemon replies (over the child's stdout).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerResponse {
    /// Preparation finished; the worker is ready for chunks.
    Ready {
        /// The worker's OS process id (the kill -9 target in recovery
        /// drills).
        pid: u32,
        /// Fault-list length.
        experiments: usize,
        /// The fault-free reference row (boxed: dominates the variant).
        reference: Box<ExperimentRecord>,
        /// Per-index prunability (identical on every worker).
        prunable: Vec<bool>,
        /// Per-index propagation-predicted verdicts (identical on every
        /// worker; absent on the wire from older workers).
        #[serde(default)]
        predicted: Vec<bool>,
        /// The static analysis to persist, when static pruning ran
        /// (boxed: the washout and equivalence maps dominate the
        /// variant).
        static_analysis: Option<Box<StaticAnalysis>>,
    },
    /// A chunk finished; rows are in index order.
    ChunkDone {
        /// The chunk id from the request.
        id: u64,
        /// The chunk's rows.
        rows: Vec<IndexedRecord>,
    },
    /// The worker cannot continue (campaign invalid on this host, target
    /// error). The daemon fails the job rather than re-issuing.
    Failed {
        /// The error text.
        error: String,
    },
}

macro_rules! frame_convertible {
    ($ty:ty, $kind:expr) => {
        impl $ty {
            /// Encodes this message as a wire frame.
            ///
            /// # Errors
            ///
            /// [`crate::NetError::Codec`] / [`crate::NetError::TooLarge`].
            pub fn to_frame(&self) -> NetResult<Frame> {
                Frame::encode_msg($kind, self)
            }

            /// Decodes this message kind from a frame, enforcing version
            /// and kind checks.
            ///
            /// # Errors
            ///
            /// [`crate::NetError::VersionMismatch`],
            /// [`crate::NetError::WrongKind`] or
            /// [`crate::NetError::Codec`].
            pub fn from_frame(frame: &Frame) -> NetResult<$ty> {
                frame.decode_msg($kind)
            }
        }
    };
}

frame_convertible!(Request, FrameKind::Request);
frame_convertible!(Response, FrameKind::Response);
frame_convertible!(Event, FrameKind::Event);
frame_convertible!(WorkerRequest, FrameKind::WorkerRequest);
frame_convertible!(WorkerResponse, FrameKind::WorkerResponse);
