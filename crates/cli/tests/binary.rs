//! Black-box tests of the `goofi` binary itself (the GUI-substitute
//! surface a user actually touches).

use std::process::Command;

fn goofi(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_goofi"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmpdb(name: &str) -> String {
    let dir = std::env::temp_dir().join("goofi_bin_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

#[test]
fn no_args_prints_usage() {
    let (ok, stdout, _) = goofi(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = goofi(&["launch-missiles"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn whole_campaign_through_the_binary() {
    let db = tmpdb("bin-flow.json");
    let (ok, stdout, _) = goofi(&[
        "configure",
        "--db",
        &db,
        "--target",
        "thor-card",
        "--workload",
        "fib12",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("configured target"));

    let (ok, stdout, _) = goofi(&[
        "setup",
        "--db",
        &db,
        "--campaign",
        "bin-c",
        "--target",
        "thor-card",
        "--workload",
        "fib12",
        "--experiments",
        "10",
        "--window",
        "0:50",
    ]);
    assert!(ok, "{stdout}");

    let (ok, stdout, stderr) = goofi(&["run", "--db", &db, "--campaign", "bin-c"]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("detection coverage"));
    assert!(stderr.contains("finished: 10 experiments"));

    let (ok, stdout, _) = goofi(&["analyze", "--db", &db, "--campaign", "bin-c"]);
    assert!(ok);
    assert!(stdout.contains("overwritten"));

    let (ok, stdout, _) = goofi(&[
        "sql",
        "--db",
        &db,
        "SELECT COUNT(*) AS n FROM LoggedSystemState",
    ]);
    assert!(ok);
    assert!(stdout.contains("11"), "10 experiments + reference: {stdout}");
}
