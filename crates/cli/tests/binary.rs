//! Black-box tests of the `goofi` binary itself (the GUI-substitute
//! surface a user actually touches).

use std::process::Command;

fn goofi(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_goofi"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmpdb(name: &str) -> String {
    let dir = std::env::temp_dir().join("goofi_bin_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

#[test]
fn no_args_prints_usage() {
    let (ok, stdout, _) = goofi(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = goofi(&["launch-missiles"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn workers_zero_is_rejected_with_clear_error() {
    let db = tmpdb("bin-w0.json");
    let (ok, _, stderr) = goofi(&["run", "--db", &db, "--campaign", "c", "--workers", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--workers"), "{stderr}");
    assert!(stderr.contains("positive integer"), "{stderr}");
    assert!(stderr.contains("`0`"), "{stderr}");
}

#[test]
fn workers_non_numeric_is_rejected_with_clear_error() {
    let db = tmpdb("bin-wx.json");
    let (ok, _, stderr) = goofi(&[
        "resume",
        "--db",
        &db,
        "--campaign",
        "c",
        "--workers",
        "many",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--workers"), "{stderr}");
    assert!(stderr.contains("`many`"), "{stderr}");
}

#[test]
fn bad_telemetry_mode_is_rejected() {
    let db = tmpdb("bin-tm.json");
    let (ok, _, stderr) = goofi(&["run", "--db", &db, "--campaign", "c", "--telemetry", "loud"]);
    assert!(!ok);
    assert!(stderr.contains("--telemetry"), "{stderr}");
    assert!(stderr.contains("`loud`"), "{stderr}");
}

#[test]
fn telemetry_run_and_report_roundtrip() {
    let db = tmpdb("bin-tel.json");
    let (ok, _, _) = goofi(&[
        "configure",
        "--db",
        &db,
        "--target",
        "t",
        "--workload",
        "fib10",
    ]);
    assert!(ok);
    let (ok, _, _) = goofi(&[
        "setup",
        "--db",
        &db,
        "--campaign",
        "ct",
        "--target",
        "t",
        "--workload",
        "fib10",
        "--experiments",
        "6",
        "--window",
        "0:40",
    ]);
    assert!(ok);
    let (ok, stdout, stderr) = goofi(&[
        "run",
        "--db",
        &db,
        "--campaign",
        "ct",
        "--workers",
        "2",
        "--telemetry",
        "trace",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("Telemetry for campaign 'ct'"), "{stdout}");
    assert!(stdout.contains("phase.experiment"), "{stdout}");

    let trace = tmpdb("bin-tel-trace.jsonl");
    let (ok, stdout, stderr) = goofi(&[
        "report",
        "--db",
        &db,
        "--campaign",
        "ct",
        "--trace-out",
        &trace,
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("phase.experiment"), "{stdout}");
    assert!(stdout.contains("worker"), "{stdout}");
    let jsonl = std::fs::read_to_string(&trace).unwrap();
    assert!(!jsonl.is_empty());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
}

#[test]
fn report_without_telemetry_omits_section_and_rejects_trace_out() {
    let db = tmpdb("bin-notel.json");
    goofi(&[
        "configure",
        "--db",
        &db,
        "--target",
        "t",
        "--workload",
        "fib10",
    ]);
    goofi(&[
        "setup",
        "--db",
        &db,
        "--campaign",
        "cn",
        "--target",
        "t",
        "--workload",
        "fib10",
        "--experiments",
        "4",
        "--window",
        "0:40",
    ]);
    let (ok, _, _) = goofi(&["run", "--db", &db, "--campaign", "cn"]);
    assert!(ok);
    let (ok, stdout, _) = goofi(&["report", "--db", &db, "--campaign", "cn"]);
    assert!(ok);
    assert!(!stdout.contains("phase.experiment"), "{stdout}");
    let (ok, _, stderr) = goofi(&[
        "report",
        "--db",
        &db,
        "--campaign",
        "cn",
        "--trace-out",
        "/tmp/nope.jsonl",
    ]);
    assert!(!ok);
    assert!(stderr.contains("no stored telemetry"), "{stderr}");
}

#[test]
fn whole_campaign_through_the_binary() {
    let db = tmpdb("bin-flow.json");
    let (ok, stdout, _) = goofi(&[
        "configure",
        "--db",
        &db,
        "--target",
        "thor-card",
        "--workload",
        "fib12",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("configured target"));

    let (ok, stdout, _) = goofi(&[
        "setup",
        "--db",
        &db,
        "--campaign",
        "bin-c",
        "--target",
        "thor-card",
        "--workload",
        "fib12",
        "--experiments",
        "10",
        "--window",
        "0:50",
    ]);
    assert!(ok, "{stdout}");

    let (ok, stdout, stderr) = goofi(&["run", "--db", &db, "--campaign", "bin-c"]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("detection coverage"));
    assert!(stderr.contains("finished: 10 experiments"));

    let (ok, stdout, _) = goofi(&["analyze", "--db", &db, "--campaign", "bin-c"]);
    assert!(ok);
    assert!(stdout.contains("overwritten"));

    let (ok, stdout, _) = goofi(&[
        "sql",
        "--db",
        &db,
        "SELECT COUNT(*) AS n FROM LoggedSystemState",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("11"),
        "10 experiments + reference: {stdout}"
    );
}

/// The same campaign run with 1, 2 and 4 workers must leave byte-identical
/// DBs (the runner's reorder buffer streams rows in fault-list order no
/// matter how the scheduler interleaves), in every pruning mode. Across
/// modes, trace and static pruning agree experiment-by-experiment on
/// sort8, so their DBs differ only by the persisted static-analysis row;
/// pruning off differs from trace only on the experiments trace pruned.
#[test]
fn pruning_runs_are_deterministic_across_workers_and_modes() {
    use goofi_core::GoofiStore;

    let setup = |db: &str| {
        let (ok, _, _) = goofi(&[
            "configure",
            "--db",
            db,
            "--target",
            "t",
            "--workload",
            "sort8",
        ]);
        assert!(ok);
        let (ok, _, _) = goofi(&[
            "setup",
            "--db",
            db,
            "--campaign",
            "cd",
            "--target",
            "t",
            "--workload",
            "sort8",
            "--experiments",
            "20",
            "--window",
            "0:300",
            "--preinject",
        ]);
        assert!(ok);
    };

    let mut final_db: Vec<Vec<u8>> = Vec::new();
    let mut pruned_counts: Vec<usize> = Vec::new();
    for mode in ["off", "trace", "static"] {
        let mut variants: Vec<Vec<u8>> = Vec::new();
        for workers in ["1", "2", "4"] {
            let db = tmpdb(&format!("bin-det-{mode}-{workers}.json"));
            setup(&db);
            let (ok, stdout, stderr) = goofi(&[
                "run",
                "--db",
                &db,
                "--campaign",
                "cd",
                "--workers",
                workers,
                "--pruning",
                mode,
            ]);
            assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
            if workers == "1" {
                let pruned = stdout
                    .lines()
                    .find_map(|l| l.strip_prefix("pruned by pre-injection analysis: "))
                    .and_then(|n| n.split_whitespace().next())
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0);
                pruned_counts.push(pruned);
            }
            variants.push(std::fs::read(&db).unwrap());
        }
        assert!(
            variants.windows(2).all(|w| w[0] == w[1]),
            "worker count changed the DB bytes in --pruning {mode}"
        );
        final_db.push(variants.pop().unwrap());
    }
    assert!(pruned_counts[1] > 0, "trace pruning found nothing on sort8");
    assert_eq!(
        pruned_counts[1], pruned_counts[2],
        "trace and static prune different counts on sort8"
    );

    // off vs trace: the per-experiment rows may differ only where trace
    // pruning substituted the reference outcome.
    let rows = |bytes: &[u8], name: &str| {
        let path = tmpdb(name);
        std::fs::write(&path, bytes).unwrap();
        GoofiStore::load(&path)
            .unwrap()
            .experiments_of("cd")
            .unwrap()
    };
    let off_rows = rows(&final_db[0], "bin-det-rows-off.json");
    let trace_rows = rows(&final_db[1], "bin-det-rows-trace.json");
    assert_eq!(off_rows.len(), trace_rows.len());
    let differing = off_rows
        .iter()
        .zip(&trace_rows)
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        differing <= pruned_counts[1],
        "{differing} rows changed but only {} were pruned",
        pruned_counts[1]
    );

    // trace vs static: byte-identical once the static-analysis row (the
    // one legitimate difference) is cleared from both.
    assert_ne!(
        final_db[1], final_db[2],
        "static DB should carry the analysis row"
    );
    let normalize = |bytes: &[u8], name: &str| {
        let path = tmpdb(name);
        std::fs::write(&path, bytes).unwrap();
        let mut store = GoofiStore::load(&path).unwrap();
        store.clear_static_analysis("cd").unwrap();
        store.save(&path).unwrap();
        std::fs::read(&path).unwrap()
    };
    assert_eq!(
        normalize(&final_db[1], "bin-det-norm-trace.json"),
        normalize(&final_db[2], "bin-det-norm-static.json"),
        "trace and static DBs differ beyond the static-analysis row"
    );
}

/// With prediction on, the runner synthesises verdict rows for faults
/// the propagation analysis proves washed out — without executing them.
/// The database must come out byte-identical at any worker count, via
/// `resume` instead of `run`, and (the soundness claim made storable)
/// identical to the run that executed every non-pruned fault for real.
#[test]
fn prediction_runs_are_deterministic_across_workers_and_resume() {
    // The sort scratch register R6 carries washout windows beyond the
    // dead set: this campaign predicts faults it cannot prune.
    let setup = |db: &str| {
        let (ok, _, _) = goofi(&[
            "configure",
            "--db",
            db,
            "--target",
            "t",
            "--workload",
            "sort16",
        ]);
        assert!(ok);
        let (ok, _, _) = goofi(&[
            "setup",
            "--db",
            db,
            "--campaign",
            "cx",
            "--target",
            "t",
            "--workload",
            "sort16",
            "--chain",
            "cpu",
            "--field",
            "R6",
            "--experiments",
            "120",
            "--window",
            "0:1100",
            "--seed",
            "7",
        ]);
        assert!(ok);
    };

    let mut variants: Vec<Vec<u8>> = Vec::new();
    for workers in ["1", "2", "4"] {
        let db = tmpdb(&format!("bin-pred-{workers}.json"));
        setup(&db);
        let (ok, stdout, stderr) = goofi(&[
            "run",
            "--db",
            &db,
            "--campaign",
            "cx",
            "--workers",
            workers,
            "--predict",
        ]);
        assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
        if workers == "1" {
            let predicted: usize = stdout
                .lines()
                .find_map(|l| l.strip_prefix("predicted by propagation analysis: "))
                .and_then(|n| n.parse().ok())
                .unwrap_or(0);
            assert!(
                predicted > 0,
                "prediction found nothing on sort16/R6: {stdout}"
            );
        }
        variants.push(std::fs::read(&db).unwrap());
    }
    assert!(
        variants.windows(2).all(|w| w[0] == w[1]),
        "worker count changed the DB bytes under --predict"
    );

    // `resume` on a never-run campaign drives the same engine path.
    let db_resume = tmpdb("bin-pred-resume.json");
    setup(&db_resume);
    let (ok, stdout, stderr) = goofi(&[
        "resume",
        "--db",
        &db_resume,
        "--campaign",
        "cx",
        "--predict",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert_eq!(
        std::fs::read(&db_resume).unwrap(),
        variants[0],
        "resume with prediction diverged from run"
    );
    // Resuming the complete campaign replays rows and changes nothing
    // logically; it does re-persist the static-analysis row, leaving a
    // dead slot behind, so compare the compacted images.
    let (ok, _, _) = goofi(&[
        "resume",
        "--db",
        &db_resume,
        "--campaign",
        "cx",
        "--predict",
    ]);
    assert!(ok);
    let compacted = |bytes: &[u8], name: &str| {
        let path = tmpdb(name);
        std::fs::write(&path, bytes).unwrap();
        let (ok, _, _) = goofi(&["db", "compact", "--db", &path]);
        assert!(ok);
        std::fs::read(&path).unwrap()
    };
    assert_eq!(
        compacted(&std::fs::read(&db_resume).unwrap(), "bin-pred-rr.json"),
        compacted(&variants[0], "bin-pred-base.json"),
        "re-resuming a complete campaign changed its rows"
    );

    // Soundness, end to end: executing every non-pruned fault for real
    // (prediction off) produces the same bytes as synthesising verdicts.
    let db_real = tmpdb("bin-pred-real.json");
    setup(&db_real);
    let (ok, _, _) = goofi(&[
        "run",
        "--db",
        &db_real,
        "--campaign",
        "cx",
        "--pruning",
        "static",
    ]);
    assert!(ok);
    assert_eq!(
        std::fs::read(&db_real).unwrap(),
        variants[0],
        "synthesised verdict rows differ from real execution"
    );
}
