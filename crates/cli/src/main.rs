//! `goofi` — command-line front-end for GOOFI-rs.
//!
//! The paper drives GOOFI through a Swing GUI whose dialogs configure
//! targets (Fig. 5), define campaigns (Fig. 6) and monitor progress
//! (Fig. 7). This binary is the same tool surface as subcommands:
//!
//! ```text
//! goofi configure --db goofi.json --target thor-card --workload sort16
//! goofi setup     --db goofi.json --campaign c1 --target thor-card \
//!                 --workload sort16 --technique scifi --chain cpu \
//!                 --experiments 200 --window 0:2000 --seed 7 [--preinject] [--detail]
//! goofi run       --db goofi.json --campaign c1
//! goofi analyze   --db goofi.json --campaign c1
//! goofi locations --db goofi.json --target thor-card [--chain cpu]
//! goofi list      --db goofi.json
//! goofi sql       --db goofi.json "SELECT outcome, COUNT(*) FROM ..."
//! ```
//!
//! Every campaign-executing verb goes through one [`CampaignService`]:
//! `run`/`resume` construct an in-process [`LocalService`], while
//! `serve` exposes the multi-process [`ProcessService`] over the wire
//! protocol and `submit`/`watch`/`attach`/`status`/`cancel`/`jobs`
//! drive it remotely through [`RemoteService`]. One event renderer
//! ([`CliSink`]) and one summary formatter serve them all.

mod args;

use args::{parse, ParsedArgs};
use goofi_core::{
    analyze_campaign, drain, Campaign, CampaignRef, CampaignService, EventSink, ExecOptions,
    FaultModel, GoofiStore, JobSpec, JobStatus, JobSummary, LocalService, LocationSelector,
    LogMode, Pruning, ServiceEvent, TargetSystemInterface, Technique, TelemetryMode,
};
use goofi_net::RemoteService;
use goofi_server::{Daemon, ProcessService, ServerConfig};
use goofi_targets::{analysis_target, standard_provider, standard_target};
use goofi_workloads::workload_by_name;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
goofi — generic fault injection tool (GOOFI reproduction)

USAGE:
  goofi configure --db FILE --target NAME --workload WORKLOAD
  goofi setup     --db FILE --campaign NAME --target NAME --workload WORKLOAD
                  [--technique scifi|swifi-preruntime|swifi-runtime]
                  [--chain CHAIN [--field FIELD]] [--memory START:WORDS]
                  [--model bit-flip|multi-bit-flip|stuck-at|intermittent]
                  [--experiments N] [--window START:END] [--seed N]
                  [--detail] [--preinject]
  goofi run       --db FILE --campaign NAME [--workers N] [--no-checkpoint]
                  [--telemetry off|metrics|trace] [--pruning off|trace|static]
                  [--class-exec] [--predict]
  goofi resume    --db FILE --campaign NAME [--workers N] [--no-checkpoint]
                  [--telemetry off|metrics|trace] [--pruning off|trace|static]
                  [--class-exec] [--predict]
  goofi serve     --db FILE [--addr HOST:PORT] [--workers N] [--chunk N]
  goofi submit    --addr HOST:PORT --campaign NAME [--workers N] [--resume]
                  [--no-checkpoint] [--telemetry off|metrics|trace]
                  [--pruning off|trace|static] [--class-exec] [--predict]
                  [--watch]
  goofi watch     --addr HOST:PORT --job ID
  goofi attach    --addr HOST:PORT --job ID
  goofi status    --addr HOST:PORT --job ID
  goofi cancel    --addr HOST:PORT --job ID
  goofi jobs      --addr HOST:PORT
  goofi shutdown  --addr HOST:PORT
  goofi analyze   --db FILE --campaign NAME
  goofi analyze   --workload WORKLOAD [--target NAME|stackvm] [--json]
                  [--lint] [--fault NAME@T1,T2[;...]] [--horizon N]
                  (with --lint/--json: exit status 2 when a gating
                   lint fires)
  goofi report    --db FILE --campaign NAME [--lambda L] [--mission HOURS]
                  [--trace-out FILE]
  goofi locations --db FILE --target NAME [--chain CHAIN]
  goofi workloads [--show WORKLOAD]
  goofi list      --db FILE
  goofi sql       --db FILE \"STATEMENT\"
  goofi db stats   --db FILE [--json]
  goofi db compact --db FILE

Workloads: sortN, matmulN, crc32xN, fibN, pid (Thor);
           sumN (with --target stackvm, analyze only)
";

/// Exit status of `goofi analyze --lint`: at least one gating lint fired.
const EXIT_LINT: u8 = 2;

/// A command's stdout plus its exit code. Most verbs exit 0 on success;
/// `analyze --lint`/`--json` exits [`EXIT_LINT`] when a gating lint
/// fires, so CI can gate on broken campaigns without parsing output.
struct CmdOutput {
    text: String,
    code: u8,
}

impl From<String> for CmdOutput {
    fn from(text: String) -> CmdOutput {
        CmdOutput { text, code: 0 }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `goofi worker` is the child process the campaign server spawns;
    // its stdout carries protocol frames, so it bypasses run() and its
    // stdout printing entirely.
    if argv.first().map(String::as_str) == Some("worker") {
        return match goofi_server::worker_main() {
            0 => ExitCode::SUCCESS,
            _ => ExitCode::FAILURE,
        };
    }
    match run(&argv) {
        Ok(output) => {
            print!("{}", output.text);
            ExitCode::from(output.code)
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load_store(path: &str) -> Result<GoofiStore, String> {
    if Path::new(path).exists() {
        GoofiStore::load(path).map_err(|e| e.to_string())
    } else {
        Ok(GoofiStore::new())
    }
}

fn run(argv: &[String]) -> Result<CmdOutput, String> {
    let parsed = parse(argv)?;
    if parsed.command.is_empty() || parsed.has_flag("help") {
        return Ok(USAGE.to_owned().into());
    }
    // `analyze` is the one verb with a non-binary exit status (lint
    // gating); everything else reports plain text.
    if parsed.command == "analyze" {
        return cmd_analyze(&parsed);
    }
    match parsed.command.as_str() {
        "configure" => cmd_configure(&parsed),
        "setup" => cmd_setup(&parsed),
        "run" => cmd_run(&parsed),
        "resume" => cmd_resume(&parsed),
        "serve" => cmd_serve(&parsed),
        "submit" => cmd_submit(&parsed),
        "watch" => cmd_watch(&parsed, true),
        "attach" => cmd_watch(&parsed, false),
        "status" => cmd_status(&parsed),
        "cancel" => cmd_cancel(&parsed),
        "jobs" => cmd_jobs(&parsed),
        "shutdown" => cmd_shutdown(&parsed),
        "report" => cmd_report(&parsed),
        "locations" => cmd_locations(&parsed),
        "workloads" => cmd_workloads(&parsed),
        "list" => cmd_list(&parsed),
        "sql" => cmd_sql(&parsed),
        "db" => cmd_db(&parsed),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
    .map(CmdOutput::from)
}

/// Configuration phase (paper Fig. 5): store the target description.
fn cmd_configure(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let target_name = p.require("target")?;
    let workload = p.require("workload")?;
    let target = standard_target(target_name, workload).map_err(|e| e.to_string())?;
    let config = target.describe();
    let mut store = load_store(db)?;
    store.put_target(&config).map_err(|e| e.to_string())?;
    store.save(db).map_err(|e| e.to_string())?;
    let chains: Vec<String> = config
        .chains
        .iter()
        .map(|c| {
            format!(
                "{} ({} bits, {} locations)",
                c.name,
                c.width,
                c.fields.len()
            )
        })
        .collect();
    Ok(format!(
        "configured target `{target_name}`\nscan chains: {}\n",
        chains.join(", ")
    ))
}

/// Set-up phase (paper Fig. 6): define and store a campaign.
fn cmd_setup(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let name = p.require("campaign")?;
    let target = p.require("target")?;
    let workload = p.require("workload")?;
    if workload_by_name(workload).is_none() {
        return Err(format!("unknown workload `{workload}`"));
    }
    let technique_name = p.get("technique").unwrap_or("scifi");
    let technique = Technique::parse(technique_name)
        .ok_or_else(|| format!("unknown technique `{technique_name}`"))?;
    let model = match p.get("model").unwrap_or("bit-flip") {
        "bit-flip" => FaultModel::BitFlip,
        "multi-bit-flip" => FaultModel::MultiBitFlip {
            bits: p.int_or("bits", 2)? as usize,
        },
        "stuck-at" => FaultModel::StuckAt {
            value: p.get("stuck-value").unwrap_or("1") == "1",
            reassert_period: p.int_or("period", 50)?,
        },
        "intermittent" => FaultModel::Intermittent {
            activations: p.int_or("activations", 3)? as usize,
        },
        other => return Err(format!("unknown fault model `{other}`")),
    };
    let (start, end) = p.window("window", (0, 1000))?;
    let mut builder = Campaign::builder(name, target, workload)
        .technique(technique)
        .fault_model(model)
        .window(start, end)
        .experiments(p.int_or("experiments", 100)? as usize)
        .seed(p.int_or("seed", 1)?)
        .pre_injection_analysis(p.has_flag("preinject"));
    if p.has_flag("detail") {
        builder = builder.log_mode(LogMode::Detail);
    }
    match technique {
        Technique::Scifi => {
            builder = builder.select(LocationSelector::Chain {
                chain: p.get("chain").unwrap_or("cpu").to_owned(),
                field: p.get("field").map(str::to_owned),
            });
        }
        Technique::SwifiPreRuntime | Technique::SwifiRuntime => {
            let spec = p.get("memory").unwrap_or("0:1024");
            let (start, words) = spec
                .split_once(':')
                .ok_or_else(|| "--memory must be START:WORDS".to_owned())?;
            builder = builder.select(LocationSelector::Memory {
                start: parse_u32(start)?,
                words: parse_u32(words)?,
            });
        }
    }
    let campaign = builder.build().map_err(|e| e.to_string())?;
    let mut store = load_store(db)?;
    store.put_campaign(&campaign).map_err(|e| e.to_string())?;
    store.save(db).map_err(|e| e.to_string())?;
    Ok(format!(
        "campaign `{}` stored: {} experiments, {} via {}\n",
        campaign.name, campaign.experiments, campaign.fault_model, campaign.technique
    ))
}

fn parse_u32(s: &str) -> Result<u32, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).map_err(|_| format!("bad number `{s}`"))
    } else {
        s.parse().map_err(|_| format!("bad number `{s}`"))
    }
}

/// The Fig. 7 progress window as a log line consumer — one renderer for
/// local runs, worker-process campaigns and remote watches, fed by
/// [`drain`] until the job's terminal event.
struct CliSink;

impl EventSink for CliSink {
    fn event(&mut self, ev: &ServiceEvent) {
        match ev {
            ServiceEvent::Started { campaign, total } => {
                eprintln!("campaign `{campaign}`: {total} experiments");
            }
            ServiceEvent::Progress {
                completed, total, ..
            } if completed % 50 == 0 || completed == total => {
                eprintln!("  {completed}/{total}");
            }
            ServiceEvent::WorkerSpawned { worker, pid } => {
                eprintln!("worker {worker}: pid {pid}");
            }
            ServiceEvent::WorkerLost { worker, reissued } => {
                eprintln!("worker {worker} lost, {reissued} experiments re-issued");
            }
            ServiceEvent::Finished { completed, stopped } => {
                eprintln!(
                    "finished: {completed} experiments{}",
                    if *stopped { " (stopped)" } else { "" }
                );
            }
            _ => {}
        }
    }
}

/// Submits `spec`, renders progress on stderr, and returns the finished
/// summary — the one execution path `run`, `resume` and `submit --watch`
/// share, whatever service backs it.
fn run_job(svc: &mut dyn CampaignService, spec: JobSpec) -> Result<JobSummary, String> {
    let job = svc.submit(spec).map_err(|e| e.to_string())?;
    let stream = svc.watch(&job, true).map_err(|e| e.to_string())?;
    drain(stream, &mut CliSink).map_err(|e| e.to_string())
}

/// The stdout summary of a finished campaign run.
fn render_run_summary(summary: &JobSummary) -> String {
    let worker_note = if summary.workers > 1 {
        format!(" ({} workers)", summary.workers)
    } else {
        String::new()
    };
    let mut out = format!(
        "{}pruned by pre-injection analysis: {}{}\n",
        summary.stats.report(),
        summary.pruned,
        worker_note
    );
    if summary.predicted > 0 {
        out.push_str(&format!(
            "predicted by propagation analysis: {}\n",
            summary.predicted
        ));
    }
    out.push_str(&class_savings_line(summary));
    if let Some(tel) = &summary.telemetry {
        out.push('\n');
        out.push_str(&tel.render());
    }
    out
}

/// One-line equivalence-class execution summary for `goofi run`/`resume`,
/// empty when the run fanned nothing out.
fn class_savings_line(summary: &JobSummary) -> String {
    match summary.class_savings {
        Some(s) => format!(
            "class execution: {} representatives executed, {} experiments fanned out\n",
            s.representatives, s.fanned
        ),
        None => String::new(),
    }
}

/// Shared option parsing for every verb that executes a campaign.
fn exec_options(p: &ParsedArgs) -> Result<ExecOptions, String> {
    let telemetry = match p.get("telemetry") {
        None => TelemetryMode::Off,
        Some(v) => TelemetryMode::parse(v).ok_or_else(|| {
            format!("option --telemetry must be off, metrics or trace (got `{v}`)")
        })?,
    };
    let pruning = match p.get("pruning") {
        // Class execution and verdict prediction both derive from the
        // static analysis the static pruner builds, so `--class-exec`
        // and `--predict` default to static pruning and compose with it
        // out of the box.
        None if p.has_flag("class-exec") || p.has_flag("predict") => Pruning::Static,
        None => Pruning::default(),
        Some(v) => v
            .parse::<Pruning>()
            .map_err(|e| format!("option --pruning: {e}"))?,
    };
    if p.has_flag("predict") && pruning != Pruning::Static {
        return Err("--predict requires --pruning static".to_owned());
    }
    Ok(ExecOptions::new()
        .workers(p.workers()?)
        .checkpoint(!p.has_flag("no-checkpoint"))
        .telemetry(telemetry)
        .pruning(pruning)
        .prediction(p.has_flag("predict"))
        .class_execution(p.has_flag("class-exec")))
}

/// Fault-injection phase with the Fig. 7 progress line: a submit + watch
/// against an in-process [`LocalService`]. Experiment rows stream into a
/// WAL-style journal beside the database as they finish, so an
/// interrupted campaign loses nothing and `goofi resume` picks up at the
/// exact experiment where the run died.
fn cmd_run(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let name = p.require("campaign")?;
    let mut svc = LocalService::new(db, standard_provider());
    let spec = JobSpec::new(CampaignRef::Name(name.to_owned())).options(exec_options(p)?);
    let summary = run_job(&mut svc, spec)?;
    Ok(render_run_summary(&summary))
}

/// Resumes an interrupted campaign — the same service path as `goofi
/// run` with [`JobSpec::resume`] set: stored experiments are reused, the
/// missing ones run (the progress window's "restart").
fn cmd_resume(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let name = p.require("campaign")?;
    let mut svc = LocalService::new(db, standard_provider());
    let spec = JobSpec::new(CampaignRef::Name(name.to_owned()))
        .options(exec_options(p)?)
        .resume(true);
    let summary = run_job(&mut svc, spec)?;
    let mut out = format!(
        "campaign `{name}` complete: {} experiments\n{}",
        summary.experiments,
        summary.stats.report()
    );
    out.push_str(&class_savings_line(&summary));
    if let Some(tel) = &summary.telemetry {
        out.push('\n');
        out.push_str(&tel.render());
    }
    Ok(out)
}

/// Runs the campaign daemon: a [`ProcessService`] farming experiments
/// out to `goofi worker` children, served over the wire protocol. Blocks
/// until `goofi shutdown`; the bound address is announced on stderr
/// first, so `--addr 127.0.0.1:0` works in scripts.
fn cmd_serve(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let addr = p.get("addr").unwrap_or("127.0.0.1:7077");
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let config = ServerConfig::new(
        db,
        vec![exe.to_string_lossy().into_owned(), "worker".into()],
    )
    .workers(p.workers()?)
    .chunk(p.int_or("chunk", 16)? as usize);
    let daemon = Daemon::bind(addr, ProcessService::new(config)).map_err(|e| e.to_string())?;
    eprintln!(
        "goofi-server: listening on {}",
        daemon.local_addr().map_err(|e| e.to_string())?
    );
    daemon.serve().map_err(|e| e.to_string())?;
    Ok("server shut down\n".to_owned())
}

fn remote(p: &ParsedArgs) -> Result<RemoteService, String> {
    RemoteService::connect(p.require("addr")?).map_err(|e| e.to_string())
}

/// Submits a campaign to a running server; `--watch` stays attached and
/// renders the run exactly like a local `goofi run`.
fn cmd_submit(p: &ParsedArgs) -> Result<String, String> {
    let name = p.require("campaign")?;
    let mut svc = remote(p)?;
    let spec = JobSpec::new(CampaignRef::Name(name.to_owned()))
        .options(exec_options(p)?)
        .resume(p.has_flag("resume"));
    if p.has_flag("watch") {
        let summary = run_job(&mut svc, spec)?;
        return Ok(render_run_summary(&summary));
    }
    let job = svc.submit(spec).map_err(|e| e.to_string())?;
    Ok(format!(
        "submitted: {job} (goofi watch --addr {} --job {job})\n",
        svc.addr()
    ))
}

/// Streams a job's events: `watch` replays from the beginning, `attach`
/// joins live. Both render the final summary when the job completes.
fn cmd_watch(p: &ParsedArgs, from_start: bool) -> Result<String, String> {
    let job = p.require("job")?;
    let mut svc = remote(p)?;
    let stream = svc.watch(job, from_start).map_err(|e| e.to_string())?;
    let summary = drain(stream, &mut CliSink).map_err(|e| e.to_string())?;
    Ok(render_run_summary(&summary))
}

fn render_status(status: &JobStatus) -> String {
    match status {
        JobStatus::Queued => "queued".to_owned(),
        JobStatus::Running { completed, total } => format!("running {completed}/{total}"),
        JobStatus::Done { summary } => format!("done ({} experiments)", summary.experiments),
        JobStatus::Failed { error } => format!("failed: {error}"),
        JobStatus::Cancelled { completed } => format!("cancelled after {completed}"),
        other => format!("{other:?}"),
    }
}

/// One job's status line.
fn cmd_status(p: &ParsedArgs) -> Result<String, String> {
    let job = p.require("job")?;
    let mut svc = remote(p)?;
    let status = svc.status(job).map_err(|e| e.to_string())?;
    Ok(format!("{job}: {}\n", render_status(&status)))
}

/// Asks the server to stop a job at the next experiment boundary.
fn cmd_cancel(p: &ParsedArgs) -> Result<String, String> {
    let job = p.require("job")?;
    let mut svc = remote(p)?;
    let delivered = svc.cancel(job).map_err(|e| e.to_string())?;
    Ok(if delivered {
        format!("job {job}: stop requested\n")
    } else {
        format!("job {job} had already finished\n")
    })
}

/// Lists the server's jobs in submission order.
fn cmd_jobs(p: &ParsedArgs) -> Result<String, String> {
    let mut svc = remote(p)?;
    let jobs = svc.jobs().map_err(|e| e.to_string())?;
    if jobs.is_empty() {
        return Ok("no jobs\n".to_owned());
    }
    let mut out = String::new();
    for (job, status) in jobs {
        out.push_str(&format!("{job}  {}\n", render_status(&status)));
    }
    Ok(out)
}

/// Stops the server's accept loop.
fn cmd_shutdown(p: &ParsedArgs) -> Result<String, String> {
    let mut svc = remote(p)?;
    svc.shutdown().map_err(|e| e.to_string())?;
    Ok(format!("server at {} shutting down\n", svc.addr()))
}

/// Analysis phase. With `--workload` this is the *static* workload
/// analyzer (CFG, dead windows, washout, lints — no campaign, no
/// reference run); with `--db --campaign` it is the automatically
/// generated classifier over the stored experiments.
fn cmd_analyze(p: &ParsedArgs) -> Result<CmdOutput, String> {
    if let Some(workload) = p.get("workload") {
        return cmd_analyze_workload(p, workload);
    }
    let db = p.require("db")?;
    let name = p.require("campaign")?;
    let store = load_store(db)?;
    let stats = analyze_campaign(&store, name).map_err(|e| e.to_string())?;
    Ok(stats.report().into())
}

/// Parses `--fault` specs: `NAME@T1[,T2...]`, several separated by `;`.
/// Each names an architectural location of the target (a scan-chain
/// field such as `R1` or `SP`); the fault flips its first bit at the
/// listed activation times, so campaign lints can vet hand-written
/// fault lists without running anything.
fn parse_fault_specs(
    config: &goofi_core::TargetSystemConfig,
    spec: &str,
) -> Result<Vec<goofi_core::PlannedFault>, String> {
    let mut faults = Vec::new();
    for part in spec.split(';').filter(|s| !s.trim().is_empty()) {
        let (name, times_str) = part
            .trim()
            .split_once('@')
            .ok_or_else(|| format!("--fault spec `{part}` must be NAME@T1[,T2...]"))?;
        let target = config
            .chains
            .iter()
            .find_map(|c| {
                c.field(name).map(|f| goofi_core::Location::ChainBit {
                    chain: c.name.clone(),
                    bit: f.offset,
                })
            })
            .ok_or_else(|| format!("--fault location `{name}` is not a field of any chain"))?;
        let times: Vec<u64> = times_str
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| format!("bad fault time `{t}`"))
            })
            .collect::<Result<_, String>>()?;
        if times.is_empty() {
            return Err(format!("--fault spec `{part}` lists no activation times"));
        }
        let model = match times.len() {
            1 => FaultModel::BitFlip,
            n => FaultModel::Intermittent { activations: n },
        };
        faults.push(goofi_core::PlannedFault {
            model,
            targets: vec![target],
            times,
        });
    }
    Ok(faults)
}

/// `goofi analyze --workload W`: static CFG + dataflow analysis of a
/// bundled workload (Thor by default, `--target stackvm` for the stack
/// machine), with human or `--json` output. `--fault` seeds a fault
/// list for the campaign lints; with `--lint` or `--json` the exit
/// code is [`EXIT_LINT`] when any gating lint fires.
fn cmd_analyze_workload(p: &ParsedArgs, workload: &str) -> Result<CmdOutput, String> {
    let horizon = p.int_or("horizon", 1_000_000)?;
    let mut target = analysis_target(p.get("target").unwrap_or("thor-card"), workload)
        .map_err(|e| e.to_string())?;
    let mut analysis = target.static_analysis(horizon).map_err(|e| e.to_string())?;
    let config = target.describe();
    if let Some(spec) = p.get("fault") {
        let faults = parse_fault_specs(&config, spec)?;
        let campaign_lints = analysis.campaign_lints(&config, &faults);
        analysis.lints.extend(campaign_lints);
    }
    let gating = analysis.lints.iter().filter(|l| l.kind.gates()).count();
    let code = if (p.has_flag("lint") || p.has_flag("json")) && gating > 0 {
        EXIT_LINT
    } else {
        0
    };
    if p.has_flag("json") {
        return Ok(CmdOutput {
            text: format!("{}\n", analysis.to_json()),
            code,
        });
    }

    let mut out = format!(
        "workload `{workload}`: {} basic blocks, {} CFG edges\n\
         replayed {} instructions (pc only, horizon {})\n",
        analysis.blocks, analysis.edges, analysis.steps, analysis.horizon
    );
    if analysis.dead.is_empty() {
        out.push_str("\nno statically dead injection windows\n");
    } else {
        out.push_str(
            "\nstatically dead injection windows (fault is overwritten before any read):\n",
        );
        let mut total = 0u64;
        for (loc, windows) in &analysis.dead {
            let slots: u64 = windows.iter().map(|&(s, e)| e - s + 1).sum();
            total += slots;
            out.push_str(&format!(
                "  {loc:<12} {slots:>6} dead slots in {:>4} windows, first {:?}\n",
                windows.len(),
                windows[0]
            ));
        }
        out.push_str(&format!(
            "  total: {total} provably dead (location, time) pairs\n"
        ));
    }
    if !analysis.equiv.is_empty() {
        let windows: usize = analysis.equiv.values().map(Vec::len).sum();
        out.push_str(&format!(
            "\nequivalence windows: {windows} across {} locations\n",
            analysis.equiv.len()
        ));
    }
    if !analysis.washout.is_empty() {
        let windows: usize = analysis.washout.values().map(Vec::len).sum();
        out.push_str(&format!(
            "washout windows (fault provably overwritten later): {windows} across {} locations\n",
            analysis.washout.len()
        ));
    }
    if analysis.lints.is_empty() {
        out.push_str("\nlints: none\n");
    } else {
        out.push_str("\nlints:\n");
        for lint in &analysis.lints {
            let gate = if lint.kind.gates() { " (gating)" } else { "" };
            out.push_str(&format!("  [{}]{gate} {}\n", lint.kind, lint.message));
        }
        if code != 0 {
            out.push_str(&format!("\n{gating} gating lint(s): exit status {code}\n"));
        }
    }
    Ok(CmdOutput { text: out, code })
}

/// Full campaign report: classification, per-location sensitivity,
/// detection latency, and the dependability figures the coverage feeds
/// (paper Section 1's analytical models).
fn cmd_report(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let name = p.require("campaign")?;
    let store = load_store(db)?;
    let campaign = store.get_campaign(name).map_err(|e| e.to_string())?;
    let config = store
        .get_target(&campaign.target)
        .map_err(|e| e.to_string())?;
    let records = store.experiments_of(name).map_err(|e| e.to_string())?;
    let ref_name = goofi_core::reference_experiment_name(name);
    let reference = records
        .iter()
        .find(|r| r.name == ref_name)
        .ok_or_else(|| format!("campaign `{name}` has no reference run"))?
        .to_run();
    let runs: Vec<goofi_core::ExperimentRun> = records
        .iter()
        .filter(|r| r.name != ref_name)
        .map(goofi_core::ExperimentRecord::to_run)
        .collect();

    let stats = goofi_core::CampaignStats::from_runs(&reference, &runs);
    let mut out = format!("campaign `{name}`\n\n{}\n", stats.report());

    let sensitivity = goofi_core::LocationSensitivity::from_runs(&reference, &runs, &config);
    out.push_str("per-location sensitivity (most critical first):\n");
    out.push_str(&sensitivity.report(2));

    if let Some(lat) = goofi_core::detection_latency(&runs) {
        out.push_str(&format!(
            "\ndetection latency (instructions): mean {:.1}, median {}, p95 {}, max {} ({} samples)\n",
            lat.mean, lat.median, lat.p95, lat.max, lat.count
        ));
    }

    let lambda = p
        .get("lambda")
        .unwrap_or("1e-4")
        .parse::<f64>()
        .map_err(|_| "--lambda must be a number".to_owned())?;
    let mission = p
        .get("mission")
        .unwrap_or("5000")
        .parse::<f64>()
        .map_err(|_| "--mission must be a number".to_owned())?;
    let coverage = stats.detection_coverage();
    let (lo, pt, hi) = goofi_core::duplex_reliability_interval(coverage, lambda, mission);
    out.push_str(&format!(
        "\ndependability (duplex, lambda={lambda}/h, mission={mission}h):\n  R(t) = {pt:.6} [{lo:.6}, {hi:.6}] from the coverage CI\n"
    ));

    // Static pre-injection analysis, when the campaign ran with
    // `--pruning static` or `--class-exec`: kept/pruned per location
    // class (re-deriving the runner's verdict from the persisted dead
    // windows) and the fault equivalence classes with their
    // multiplicities — dead classes collapse to the reference outcome,
    // live classes executed one representative for all members.
    if let Some(sa) = store.get_static_analysis(name).map_err(|e| e.to_string())? {
        out.push_str(&format!(
            "\nstatic pre-injection analysis ({} blocks, {} edges, horizon {}):\n",
            sa.blocks, sa.edges, sa.horizon
        ));
        let mut per_loc: std::collections::BTreeMap<String, (usize, usize)> =
            std::collections::BTreeMap::new();
        for r in &records {
            let Some(fault) = &r.data.fault else { continue };
            let mut names: Vec<String> = fault
                .targets
                .iter()
                .map(|t| {
                    t.architectural_name(&config)
                        .unwrap_or_else(|| "(untraceable)".into())
                })
                .collect();
            names.sort();
            names.dedup();
            let counts = per_loc.entry(names.join(",")).or_default();
            if sa.can_prune(&config, fault) {
                counts.1 += 1;
            } else {
                counts.0 += 1;
            }
        }
        out.push_str("  location           kept  pruned\n");
        for (loc, (kept, pruned)) in &per_loc {
            out.push_str(&format!("  {loc:<16} {kept:>6} {pruned:>7}\n"));
        }
        let dead: Vec<_> = sa
            .classes
            .iter()
            .filter(|c| c.kind == goofi_core::ClassKind::Dead)
            .collect();
        if !dead.is_empty() {
            out.push_str(&format!(
                "  equivalence classes among pruned faults: {}\n",
                dead.len()
            ));
            for c in dead.iter().take(8) {
                out.push_str(&format!(
                    "    {} in dead window {:?}: multiplicity {}\n",
                    c.location, c.window, c.multiplicity
                ));
            }
            if dead.len() > 8 {
                out.push_str(&format!("    (+{} more)\n", dead.len() - 8));
            }
        }
        // Live classes: the campaign ran with `--class-exec`, executing
        // one representative per class and fanning its verdict out.
        let (live_classes, fanned) = sa.class_savings();
        if live_classes > 0 {
            out.push_str(&format!(
                "  class execution savings: {live_classes} classes executed, \
                 {fanned} faults fanned out ({fanned} experiments avoided)\n"
            ));
            for c in sa
                .classes
                .iter()
                .filter(|c| c.kind == goofi_core::ClassKind::Live)
                .take(8)
            {
                out.push_str(&format!(
                    "    {} in equivalence window {:?}: {} members, representative #{}\n",
                    c.location, c.window, c.multiplicity, c.representative
                ));
            }
            if live_classes > 8 {
                out.push_str(&format!("    (+{} more)\n", live_classes - 8));
            }
        }
    }

    // Campaign telemetry rollup, when the run recorded one.
    match store.get_telemetry(name).map_err(|e| e.to_string())? {
        Some(tel) => {
            out.push('\n');
            out.push_str(&tel.render());
            if let Some(path) = p.get("trace-out") {
                std::fs::write(path, tel.to_trace_jsonl()).map_err(|e| e.to_string())?;
                out.push_str(&format!(
                    "trace: {} logged spans written to {path}\n",
                    tel.spans.len()
                ));
            }
        }
        None => {
            if p.get("trace-out").is_some() {
                return Err(format!(
                    "campaign `{name}` has no stored telemetry; run with --telemetry metrics|trace"
                ));
            }
        }
    }
    Ok(out)
}

/// Lists a stored target's injectable locations (the Fig. 6 hierarchy).
fn cmd_locations(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let name = p.require("target")?;
    let store = load_store(db)?;
    let config = store.get_target(name).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for chain in &config.chains {
        if let Some(filter) = p.get("chain") {
            if filter != chain.name {
                continue;
            }
        }
        out.push_str(&format!("{} ({} bits)\n", chain.name, chain.width));
        for f in &chain.fields {
            out.push_str(&format!(
                "  {:<12} bits {:>5}..{:<5}{}\n",
                f.name,
                f.offset,
                f.offset + f.width,
                if f.writable { "" } else { "  [read-only]" }
            ));
        }
    }
    Ok(out)
}

/// Lists the bundled workloads, or shows one workload's assembly source
/// and disassembled image.
fn cmd_workloads(p: &ParsedArgs) -> Result<String, String> {
    match p.get("show") {
        None => {
            let mut out = String::from("bundled workloads (N = size parameter):\n");
            for (name, descr) in [
                ("sortN", "selection sort over N pseudo-random words"),
                ("matmulN", "N x N integer matrix multiply"),
                ("crc32xN", "CRC-32 over N words"),
                ("fibN", "iterative Fibonacci"),
                ("pid", "cyclic PID controller (environment-coupled)"),
            ] {
                out.push_str(&format!("  {name:<10} {descr}\n"));
            }
            Ok(out)
        }
        Some(name) => {
            let w = workload_by_name(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
            Ok(format!(
                "; workload `{}` ({} words)\n\n== source ==\n{}\n== image ==\n{}",
                w.name,
                w.program.word_count(),
                w.source,
                thor_rd::disassemble(&w.program, 0x4000)
            ))
        }
    }
}

fn cmd_list(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let store = load_store(db)?;
    let targets = store.list_targets().map_err(|e| e.to_string())?;
    let campaigns = store.list_campaigns().map_err(|e| e.to_string())?;
    Ok(format!(
        "targets:   {}\ncampaigns: {}\n",
        if targets.is_empty() {
            "(none)".to_owned()
        } else {
            targets.join(", ")
        },
        if campaigns.is_empty() {
            "(none)".to_owned()
        } else {
            campaigns.join(", ")
        }
    ))
}

/// Ad-hoc SQL over the tool database (the paper's "tailor made scripts").
fn cmd_sql(p: &ParsedArgs) -> Result<String, String> {
    let db = p.require("db")?;
    let stmt = p
        .positional
        .first()
        .ok_or_else(|| "sql needs a statement argument".to_owned())?;
    let mut store = load_store(db)?;
    match store
        .database_mut()
        .execute_sql(stmt)
        .map_err(|e| e.to_string())?
    {
        goofi_db::SqlOutput::Rows(rs) => Ok(rs.to_string()),
        goofi_db::SqlOutput::Affected(n) => {
            store.save(db).map_err(|e| e.to_string())?;
            Ok(format!("{n} rows affected\n"))
        }
        goofi_db::SqlOutput::None => {
            store.save(db).map_err(|e| e.to_string())?;
            Ok("ok\n".to_owned())
        }
    }
}

/// Storage-engine maintenance: `goofi db stats` / `goofi db compact`.
fn cmd_db(p: &ParsedArgs) -> Result<String, String> {
    match p.positional.first().map(String::as_str) {
        Some("stats") => cmd_db_stats(p),
        Some("compact") => cmd_db_compact(p),
        other => Err(format!(
            "db needs a verb: `stats` or `compact` (got `{}`)",
            other.unwrap_or("")
        )),
    }
}

/// Page, WAL and index statistics of a paged database file.
fn cmd_db_stats(p: &ParsedArgs) -> Result<String, String> {
    use goofi_db::storage::{is_paged_file, PagedEngine};
    let db = p.require("db")?;
    let path = Path::new(db);
    if !path.exists() {
        return Err(format!("no database at `{db}`"));
    }
    if !is_paged_file(path) {
        return Err(format!(
            "`{db}` is a legacy JSON snapshot — run `goofi db compact --db {db}` to migrate it \
             to the paged format first"
        ));
    }
    let mut engine = PagedEngine::open(path).map_err(|e| e.to_string())?;
    let stats = engine.stats().map_err(|e| e.to_string())?;
    if p.has_flag("json") {
        return serde_json::to_string_pretty(&stats)
            .map(|s| s + "\n")
            .map_err(|e| e.to_string());
    }
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "page size:   {} B", stats.page_size);
    let _ = writeln!(
        out,
        "data file:   {} pages, {} B",
        stats.page_count, stats.file_bytes
    );
    let _ = writeln!(
        out,
        "write-ahead: {} records, {} B",
        stats.wal_records, stats.wal_bytes
    );
    let dead: u64 = stats.tables.iter().map(|t| t.dead_slots).sum();
    let live: u64 = stats.tables.iter().map(|t| t.live_rows).sum();
    let _ = writeln!(
        out,
        "rows:        {live} live, {dead} dead slot(s){}",
        if dead > 0 {
            " — `goofi db compact` reclaims them"
        } else {
            ""
        }
    );
    for t in &stats.tables {
        let _ = writeln!(
            out,
            "  {:<20} {:>8} rows {:>6} dead {:>6} pages {:>8} indexed",
            t.name, t.live_rows, t.dead_slots, t.heap_pages, t.index_entries
        );
    }
    Ok(out)
}

/// Checkpoint + vacuum: rewrites the database as a compact paged file,
/// dropping dead slots and truncating the write-ahead log. Also migrates
/// legacy JSON snapshots to the paged format.
fn cmd_db_compact(p: &ParsedArgs) -> Result<String, String> {
    use goofi_db::storage::wal_path;
    let db = p.require("db")?;
    let path = Path::new(db);
    if !path.exists() {
        return Err(format!("no database at `{db}`"));
    }
    let file_len = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    let before = file_len(path) + file_len(&wal_path(path));
    let mut store = load_store(db)?;
    store.save(db).map_err(|e| e.to_string())?;
    let after = file_len(path) + file_len(&wal_path(path));
    Ok(format!("compacted `{db}`: {before} B -> {after} B\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdb(name: &str) -> String {
        let dir = std::env::temp_dir().join("goofi_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path.to_string_lossy().into_owned()
    }

    fn call(args: &[&str]) -> Result<String, String> {
        call_code(args).map(|out| out.text)
    }

    fn call_code(args: &[&str]) -> Result<CmdOutput, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&argv)
    }

    #[test]
    fn full_flow_configure_setup_run_analyze() {
        let db = tmpdb("flow.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "thor-card",
            "--workload",
            "fib10",
        ])
        .unwrap();
        let out = call(&[
            "setup",
            "--db",
            &db,
            "--campaign",
            "c1",
            "--target",
            "thor-card",
            "--workload",
            "fib10",
            "--experiments",
            "15",
            "--window",
            "0:40",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("campaign `c1` stored"));
        let out = call(&["run", "--db", &db, "--campaign", "c1"]).unwrap();
        assert!(out.contains("detection coverage"));
        let out = call(&["analyze", "--db", &db, "--campaign", "c1"]).unwrap();
        assert!(out.contains("experiments:"));
        assert!(out.contains("15"));
        let out = call(&["list", "--db", &db]).unwrap();
        assert!(out.contains("thor-card") && out.contains("c1"));
    }

    #[test]
    fn locations_lists_read_only_markers() {
        let db = tmpdb("loc.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "t",
            "--workload",
            "fib10",
        ])
        .unwrap();
        let out = call(&[
            "locations",
            "--db",
            &db,
            "--target",
            "t",
            "--chain",
            "boundary",
        ])
        .unwrap();
        assert!(out.contains("ADDR"));
        assert!(out.contains("[read-only]"));
        assert!(!out.contains("R0"), "filtered to boundary chain");
    }

    #[test]
    fn sql_queries_the_store() {
        let db = tmpdb("sql.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "t",
            "--workload",
            "fib10",
        ])
        .unwrap();
        let out = call(&[
            "sql",
            "--db",
            &db,
            "SELECT COUNT(*) AS n FROM TargetSystemData",
        ])
        .unwrap();
        assert!(out.contains('1'));
    }

    #[test]
    fn helpful_errors() {
        assert!(call(&["frobnicate"])
            .unwrap_err()
            .contains("unknown command"));
        assert!(call(&["run", "--db", "/tmp/definitely-missing.json"])
            .unwrap_err()
            .contains("--campaign"));
        let db = tmpdb("err.json");
        assert!(call(&[
            "setup",
            "--db",
            &db,
            "--campaign",
            "c",
            "--target",
            "t",
            "--workload",
            "warp-drive"
        ])
        .unwrap_err()
        .contains("unknown workload"));
        // Remote verbs name the unreachable server.
        assert!(
            call(&["submit", "--addr", "127.0.0.1:1", "--campaign", "c"])
                .unwrap_err()
                .contains("cannot reach goofi server")
        );
    }

    #[test]
    fn workloads_lists_and_shows() {
        let out = call(&["workloads"]).unwrap();
        assert!(out.contains("sortN"));
        let out = call(&["workloads", "--show", "fib10"]).unwrap();
        assert!(out.contains("== source =="));
        assert!(out.contains("fibout:"));
        assert!(call(&["workloads", "--show", "nope"]).is_err());
    }

    #[test]
    fn usage_on_no_command() {
        assert!(call(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn analyze_workload_reports_windows_and_lints() {
        let out = call(&["analyze", "--workload", "sort16"]).unwrap();
        assert!(out.contains("basic blocks"), "{out}");
        assert!(out.contains("statically dead injection windows"), "{out}");
        assert!(
            out.contains("R6"),
            "the sort scratch register has windows: {out}"
        );
        // No DB and no campaign were needed.
        assert!(call(&["analyze", "--workload", "nope"]).is_err());
    }

    #[test]
    fn analyze_workload_json_roundtrips() {
        let out = call(&["analyze", "--workload", "fib10", "--json"]).unwrap();
        let parsed = goofi_core::StaticAnalysis::from_json(out.trim()).unwrap();
        assert!(parsed.blocks > 0);
        assert!(parsed.steps > 0);
        assert!(!parsed.dead.is_empty());
        // The horizon knob is honoured.
        let out = call(&["analyze", "--workload", "fib10", "--json", "--horizon", "5"]).unwrap();
        let parsed = goofi_core::StaticAnalysis::from_json(out.trim()).unwrap();
        assert_eq!(parsed.horizon, 5);
    }

    #[test]
    fn static_pruning_run_matches_trace_classification_and_reports() {
        let setup = |db: &str| {
            call(&[
                "configure",
                "--db",
                db,
                "--target",
                "t",
                "--workload",
                "sort8",
            ])
            .unwrap();
            call(&[
                "setup",
                "--db",
                db,
                "--campaign",
                "cs",
                "--target",
                "t",
                "--workload",
                "sort8",
                "--experiments",
                "30",
                "--window",
                "0:300",
                "--preinject",
            ])
            .unwrap();
        };
        let db_static = tmpdb("prune_static.json");
        setup(&db_static);
        let out = call(&[
            "run",
            "--db",
            &db_static,
            "--campaign",
            "cs",
            "--pruning",
            "static",
        ])
        .unwrap();
        let pruned: usize = out
            .lines()
            .find_map(|l| l.strip_prefix("pruned by pre-injection analysis: "))
            .and_then(|n| n.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .expect("run reports a pruned count");
        assert!(pruned > 0, "static pruning found nothing on sort8: {out}");

        // Same campaign with trace pruning classifies identically.
        let db_trace = tmpdb("prune_trace.json");
        setup(&db_trace);
        let trace_out = call(&[
            "run",
            "--db",
            &db_trace,
            "--campaign",
            "cs",
            "--pruning",
            "trace",
        ])
        .unwrap();
        let classification = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("pruned by"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(classification(&out), classification(&trace_out));

        // The report surfaces the persisted analysis.
        let report = call(&["report", "--db", &db_static, "--campaign", "cs"]).unwrap();
        assert!(report.contains("static pre-injection analysis"), "{report}");
        assert!(report.contains("kept  pruned"), "{report}");
        assert!(report.contains("equivalence classes"), "{report}");
        // A trace-pruned campaign stores no static analysis.
        let report = call(&["report", "--db", &db_trace, "--campaign", "cs"]).unwrap();
        assert!(
            !report.contains("static pre-injection analysis"),
            "{report}"
        );
        // Bad mode is rejected with the option named.
        let err = call(&[
            "run",
            "--db",
            &db_static,
            "--campaign",
            "cs",
            "--pruning",
            "psychic",
        ])
        .unwrap_err();
        assert!(err.contains("--pruning"), "{err}");
    }

    #[test]
    fn class_exec_run_matches_plain_classification_and_reports() {
        let setup = |db: &str| {
            call(&[
                "configure",
                "--db",
                db,
                "--target",
                "t",
                "--workload",
                "sort8",
            ])
            .unwrap();
            // One 32-bit field keeps the location space small enough
            // that several faults provably share an equivalence class.
            call(&[
                "setup",
                "--db",
                db,
                "--campaign",
                "ce",
                "--target",
                "t",
                "--workload",
                "sort8",
                "--chain",
                "cpu",
                "--field",
                "R6",
                "--experiments",
                "200",
                "--window",
                "0:300",
                "--seed",
                "9",
            ])
            .unwrap();
        };
        let db_plain = tmpdb("class_plain.json");
        setup(&db_plain);
        let plain = call(&["run", "--db", &db_plain, "--campaign", "ce"]).unwrap();

        let db_class = tmpdb("class_exec.json");
        setup(&db_class);
        let classed =
            call(&["run", "--db", &db_class, "--campaign", "ce", "--class-exec"]).unwrap();
        assert!(
            classed.contains("class execution:"),
            "run reports fan-out savings: {classed}"
        );
        // `--class-exec` defaults to static pruning: the two compose.
        let pruned: usize = classed
            .lines()
            .find_map(|l| l.strip_prefix("pruned by pre-injection analysis: "))
            .and_then(|n| n.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .expect("run reports a pruned count");
        assert!(pruned > 0, "class-exec run pruned nothing: {classed}");
        // Classification is identical with class execution on, modulo
        // the pruned-count annotations: `--class-exec` defaults to
        // static pruning, the plain run to (inactive) trace pruning.
        let classification = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("class execution:") && !l.starts_with("pruned by"))
                .map(|l| l.split("  (of which").next().unwrap_or(l).to_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(classification(&plain), classification(&classed));

        // The report surfaces the savings from the persisted analysis.
        let report = call(&["report", "--db", &db_class, "--campaign", "ce"]).unwrap();
        assert!(report.contains("class execution savings"), "{report}");
        assert!(report.contains("equivalence window"), "{report}");
    }

    #[test]
    fn resume_is_idempotent_when_complete() {
        let db = tmpdb("resume.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "t",
            "--workload",
            "fib10",
        ])
        .unwrap();
        call(&[
            "setup",
            "--db",
            &db,
            "--campaign",
            "crz",
            "--target",
            "t",
            "--workload",
            "fib10",
            "--experiments",
            "8",
            "--window",
            "0:40",
        ])
        .unwrap();
        // Resume on a never-run campaign runs everything...
        let out = call(&["resume", "--db", &db, "--campaign", "crz"]).unwrap();
        assert!(out.contains("8 experiments"), "{out}");
        // ...and resuming a complete campaign replays stored rows.
        let out = call(&["resume", "--db", &db, "--campaign", "crz"]).unwrap();
        assert!(out.contains("8 experiments"), "{out}");
    }

    #[test]
    fn report_combines_all_analyses() {
        let db = tmpdb("report.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "t",
            "--workload",
            "sort8",
        ])
        .unwrap();
        call(&[
            "setup",
            "--db",
            &db,
            "--campaign",
            "cr",
            "--target",
            "t",
            "--workload",
            "sort8",
            "--experiments",
            "40",
            "--window",
            "0:800",
        ])
        .unwrap();
        call(&["run", "--db", &db, "--campaign", "cr"]).unwrap();
        let out = call(&["report", "--db", &db, "--campaign", "cr"]).unwrap();
        assert!(out.contains("per-location sensitivity"), "{out}");
        assert!(out.contains("dependability"), "{out}");
        assert!(out.contains("R(t)"), "{out}");
    }

    #[test]
    fn parallel_run_via_workers_flag() {
        let db = tmpdb("par.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "t",
            "--workload",
            "fib10",
        ])
        .unwrap();
        call(&[
            "setup",
            "--db",
            &db,
            "--campaign",
            "cp",
            "--target",
            "t",
            "--workload",
            "fib10",
            "--experiments",
            "12",
            "--window",
            "0:40",
        ])
        .unwrap();
        let out = call(&["run", "--db", &db, "--campaign", "cp", "--workers", "3"]).unwrap();
        assert!(out.contains("(3 workers)"), "{out}");
        let out = call(&["analyze", "--db", &db, "--campaign", "cp"]).unwrap();
        assert!(out.contains("12"), "{out}");
    }

    #[test]
    fn no_checkpoint_flag_matches_checkpointed_run() {
        let setup = |db: &str, campaign: &str| {
            call(&[
                "configure",
                "--db",
                db,
                "--target",
                "t",
                "--workload",
                "fib10",
            ])
            .unwrap();
            call(&[
                "setup",
                "--db",
                db,
                "--campaign",
                campaign,
                "--target",
                "t",
                "--workload",
                "fib10",
                "--experiments",
                "10",
                "--window",
                "0:40",
            ])
            .unwrap();
        };
        let warm = tmpdb("nc_warm.json");
        setup(&warm, "nc");
        call(&["run", "--db", &warm, "--campaign", "nc"]).unwrap();
        let cold = tmpdb("nc_cold.json");
        setup(&cold, "nc");
        call(&["run", "--db", &cold, "--campaign", "nc", "--no-checkpoint"]).unwrap();
        let warm_json = std::fs::read(&warm).unwrap();
        let cold_json = std::fs::read(&cold).unwrap();
        assert_eq!(warm_json, cold_json, "checkpointing changed the database");
    }

    #[test]
    fn swifi_setup_and_run() {
        let db = tmpdb("swifi.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "t",
            "--workload",
            "sort8",
        ])
        .unwrap();
        let out = call(&[
            "setup",
            "--db",
            &db,
            "--campaign",
            "cs",
            "--target",
            "t",
            "--workload",
            "sort8",
            "--technique",
            "swifi-preruntime",
            "--memory",
            "0x4000:8",
            "--experiments",
            "5",
        ])
        .unwrap();
        assert!(out.contains("swifi-preruntime"));
        let out = call(&["run", "--db", &db, "--campaign", "cs"]).unwrap();
        assert!(out.contains("experiments:"));
    }

    #[test]
    fn db_stats_and_compact_report_engine_state() {
        let db = tmpdb("dbverbs.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "thor-card",
            "--workload",
            "fib10",
        ])
        .unwrap();
        call(&[
            "setup",
            "--db",
            &db,
            "--campaign",
            "cv",
            "--target",
            "thor-card",
            "--workload",
            "fib10",
            "--experiments",
            "8",
            "--window",
            "0:40",
            "--seed",
            "3",
        ])
        .unwrap();
        call(&["run", "--db", &db, "--campaign", "cv"]).unwrap();
        let out = call(&["db", "stats", "--db", &db]).unwrap();
        assert!(out.contains("LoggedSystemState"), "{out}");
        assert!(out.contains("page size:"), "{out}");
        let json = call(&["db", "stats", "--db", &db, "--json"]).unwrap();
        assert!(
            json.contains("\"page_count\"") && json.contains("\"tables\""),
            "{json}"
        );
        let out = call(&["db", "compact", "--db", &db]).unwrap();
        assert!(out.contains("compacted"), "{out}");
        // The compacted file still answers stats and reports.
        let out = call(&["db", "stats", "--db", &db]).unwrap();
        assert!(out.contains("0 dead"), "{out}");
        call(&["report", "--db", &db, "--campaign", "cv"]).unwrap();
        assert!(call(&["db", "frobnicate", "--db", &db]).is_err());
        assert!(call(&["db", "stats", "--db", "/tmp/definitely-missing.db"]).is_err());
    }

    #[test]
    fn analyze_lint_gates_exit_status_on_both_isas() {
        // A fault seeded into a provably-dead window fires the gating
        // lint; the exit status is 2 only under --lint or --json.
        let out = call_code(&[
            "analyze",
            "--workload",
            "sort16",
            "--fault",
            "R6@0",
            "--lint",
        ])
        .unwrap();
        assert_eq!(out.code, EXIT_LINT, "{}", out.text);
        assert!(
            out.text.contains("fault-targets-dead-location"),
            "{}",
            out.text
        );
        assert!(out.text.contains("(gating)"), "{}", out.text);
        let out = call_code(&[
            "analyze",
            "--workload",
            "sum8",
            "--target",
            "stackvm",
            "--fault",
            "S0@0",
            "--json",
        ])
        .unwrap();
        assert_eq!(out.code, EXIT_LINT);
        // Without --lint/--json the findings are reported, not gated.
        let out = call_code(&["analyze", "--workload", "sort16", "--fault", "R6@0"]).unwrap();
        assert_eq!(out.code, 0);
        // A clean workload passes the gate.
        let out = call_code(&["analyze", "--workload", "sort16", "--lint"]).unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        // Bad specs name the problem.
        let err = call(&["analyze", "--workload", "sort16", "--fault", "R6"]).unwrap_err();
        assert!(err.contains("NAME@T1"), "{err}");
        let err = call(&["analyze", "--workload", "sort16", "--fault", "NOPE@0"]).unwrap_err();
        assert!(err.contains("NOPE"), "{err}");
    }

    #[test]
    fn analyze_stackvm_json_reports_classes_and_washout() {
        let out = call(&[
            "analyze",
            "--workload",
            "sum8",
            "--target",
            "stackvm",
            "--json",
        ])
        .unwrap();
        let parsed = goofi_core::StaticAnalysis::from_json(out.trim()).unwrap();
        assert!(!parsed.dead.is_empty(), "stackvm dead windows missing");
        assert!(
            !parsed.equiv.is_empty(),
            "stackvm equivalence windows missing"
        );
        assert!(
            !parsed.washout.is_empty(),
            "stackvm washout windows missing"
        );
        // Only sumN programs ship for the stack machine.
        assert!(call(&["analyze", "--workload", "fib10", "--target", "stackvm"]).is_err());
    }

    #[test]
    fn predict_run_reports_and_requires_static_pruning() {
        let db = tmpdb("predict.json");
        call(&[
            "configure",
            "--db",
            &db,
            "--target",
            "t",
            "--workload",
            "sort16",
        ])
        .unwrap();
        // The sort scratch register has washout windows beyond the dead
        // set: some faults are predictable but not prunable.
        call(&[
            "setup",
            "--db",
            &db,
            "--campaign",
            "cp",
            "--target",
            "t",
            "--workload",
            "sort16",
            "--chain",
            "cpu",
            "--field",
            "R6",
            "--experiments",
            "120",
            "--window",
            "0:1100",
            "--seed",
            "7",
        ])
        .unwrap();
        let out = call(&["run", "--db", &db, "--campaign", "cp", "--predict"]).unwrap();
        let predicted: usize = out
            .lines()
            .find_map(|l| l.strip_prefix("predicted by propagation analysis: "))
            .and_then(|n| n.parse().ok())
            .expect("run reports a predicted count");
        assert!(
            predicted > 0,
            "prediction found nothing on sort16/R6: {out}"
        );
        // --predict composes with (and defaults to) static pruning only.
        let err = call(&[
            "run",
            "--db",
            &db,
            "--campaign",
            "cp",
            "--predict",
            "--pruning",
            "trace",
        ])
        .unwrap_err();
        assert!(err.contains("--predict"), "{err}");
    }

    #[test]
    fn db_compact_migrates_legacy_json_snapshots() {
        let db = tmpdb("dblegacy.json");
        // Write a legacy JSON snapshot directly (pre-engine on-disk format).
        let store = GoofiStore::new();
        store.database().save(&db).unwrap();
        let err = call(&["db", "stats", "--db", &db]).unwrap_err();
        assert!(err.contains("legacy JSON"), "{err}");
        let out = call(&["db", "compact", "--db", &db]).unwrap();
        assert!(out.contains("compacted"), "{out}");
        let out = call(&["db", "stats", "--db", &db]).unwrap();
        assert!(out.contains("TargetSystemData"), "{out}");
    }
}
