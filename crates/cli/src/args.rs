//! Minimal command-line argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// A parsed command line: subcommand, `--key value` options and `--flag`
/// switches, plus positional arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// `--key value` pairs.
    pub options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
}

/// Switches that take no value.
const FLAG_NAMES: &[&str] = &[
    "detail",
    "preinject",
    "parallel",
    "no-checkpoint",
    "class-exec",
    "predict",
    "json",
    "lint",
    "help",
    "resume",
    "watch",
];

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a message for an option missing its value.
pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
    let mut out = ParsedArgs::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if FLAG_NAMES.contains(&name) {
                out.flags.push(name.to_owned());
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("option --{name} needs a value"))?;
                out.options.insert(name.to_owned(), value.clone());
            }
        } else if out.command.is_empty() {
            out.command = arg.clone();
        } else {
            out.positional.push(arg.clone());
        }
    }
    Ok(out)
}

impl ParsedArgs {
    /// Option value by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required option value.
    ///
    /// # Errors
    ///
    /// A usage message naming the missing option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Whether a switch was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses an optional integer with a default.
    ///
    /// # Errors
    ///
    /// A message naming the option on parse failure.
    pub fn int_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key} must be an integer")),
        }
    }

    /// Parses the `--workers` option: defaults to 1, rejects zero and
    /// non-numeric values with a message naming the option.
    ///
    /// # Errors
    ///
    /// A message naming the option and the offending value.
    pub fn workers(&self) -> Result<usize, String> {
        match self.get("workers") {
            None => Ok(1),
            Some(v) => {
                v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("option --workers must be a positive integer (got `{v}`)")
                })
            }
        }
    }

    /// Parses a `start:end` window.
    ///
    /// # Errors
    ///
    /// A message naming the option on bad syntax.
    pub fn window(&self, key: &str, default: (u64, u64)) -> Result<(u64, u64), String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                let (a, b) = v
                    .split_once(':')
                    .ok_or_else(|| format!("option --{key} must be START:END"))?;
                let a = a
                    .parse()
                    .map_err(|_| format!("bad window start in --{key}"))?;
                let b = b
                    .parse()
                    .map_err(|_| format!("bad window end in --{key}"))?;
                Ok((a, b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_flags() {
        let p = parse(&args(&[
            "setup",
            "--campaign",
            "c1",
            "--detail",
            "--experiments",
            "50",
        ]))
        .unwrap();
        assert_eq!(p.command, "setup");
        assert_eq!(p.get("campaign"), Some("c1"));
        assert!(p.has_flag("detail"));
        assert_eq!(p.int_or("experiments", 0).unwrap(), 50);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&args(&["setup", "--campaign"])).is_err());
    }

    #[test]
    fn positional_after_command() {
        let p = parse(&args(&["sql", "SELECT 1"])).unwrap();
        assert_eq!(p.command, "sql");
        assert_eq!(p.positional, vec!["SELECT 1"]);
    }

    #[test]
    fn window_parsing() {
        let p = parse(&args(&["setup", "--window", "10:200"])).unwrap();
        assert_eq!(p.window("window", (0, 0)).unwrap(), (10, 200));
        let p = parse(&args(&["setup"])).unwrap();
        assert_eq!(p.window("window", (1, 2)).unwrap(), (1, 2));
        let p = parse(&args(&["setup", "--window", "nope"])).unwrap();
        assert!(p.window("window", (0, 0)).is_err());
    }

    #[test]
    fn require_and_int_errors_name_the_option() {
        let p = parse(&args(&["run"])).unwrap();
        assert!(p.require("campaign").unwrap_err().contains("--campaign"));
        let p = parse(&args(&["run", "--experiments", "abc"])).unwrap();
        assert!(p
            .int_or("experiments", 0)
            .unwrap_err()
            .contains("--experiments"));
    }

    #[test]
    fn int_or_uses_default() {
        let p = parse(&args(&["run"])).unwrap();
        assert_eq!(p.int_or("seed", 7).unwrap(), 7);
    }

    #[test]
    fn workers_defaults_to_one() {
        let p = parse(&args(&["run"])).unwrap();
        assert_eq!(p.workers().unwrap(), 1);
        let p = parse(&args(&["run", "--workers", "4"])).unwrap();
        assert_eq!(p.workers().unwrap(), 4);
    }

    #[test]
    fn workers_rejects_zero_and_garbage() {
        let p = parse(&args(&["run", "--workers", "0"])).unwrap();
        let err = p.workers().unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        assert!(err.contains("`0`"), "{err}");
        let p = parse(&args(&["run", "--workers", "two"])).unwrap();
        let err = p.workers().unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        let p = parse(&args(&["run", "--workers", "-3"])).unwrap();
        assert!(p.workers().is_err());
    }
}
