//! Closed-loop plant models for control-application workloads.

use crate::{Environment, SCALE};

/// A first-order DC-motor speed plant controlled by the target's PID
/// workload.
///
/// Discrete dynamics in fixed point (per iteration):
/// `speed' = speed + (u * B_NUM / B_DEN) - (speed * A_NUM / A_DEN)`,
/// i.e. a stable first-order lag driven by the control signal `u`.
///
/// Inputs to the target: `[setpoint, measured_speed]`.
/// Outputs from the target: `[control_signal]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DcMotorEnv {
    setpoint: i32,
    speed: i32,
    history: Vec<i32>,
}

impl DcMotorEnv {
    /// Gain numerator for the control input.
    const B_NUM: i64 = 1;
    /// Gain denominator for the control input.
    const B_DEN: i64 = 4;
    /// Decay numerator.
    const A_NUM: i64 = 1;
    /// Decay denominator.
    const A_DEN: i64 = 8;

    /// Creates a plant at rest with the given fixed-point setpoint.
    pub fn new(setpoint: i32) -> DcMotorEnv {
        DcMotorEnv {
            setpoint,
            speed: 0,
            history: Vec::new(),
        }
    }

    /// Current plant speed (fixed point).
    pub fn speed(&self) -> i32 {
        self.speed
    }

    /// The setpoint (fixed point).
    pub fn setpoint(&self) -> i32 {
        self.setpoint
    }

    /// Speed trajectory, one sample per iteration.
    pub fn history(&self) -> &[i32] {
        &self.history
    }

    /// Largest absolute control error over the last `tail` iterations
    /// (fixed point). Used to judge whether a faulty run violated its
    /// control requirement (an *escaped* error in the paper's terms).
    pub fn max_tail_error(&self, tail: usize) -> i32 {
        self.history
            .iter()
            .rev()
            .take(tail)
            .map(|s| (s - self.setpoint).abs())
            .max()
            .unwrap_or(0)
    }
}

impl Environment for DcMotorEnv {
    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn exchange(&mut self, outputs: &[i32]) -> Vec<i32> {
        let u = outputs.first().copied().unwrap_or(0) as i64;
        // Saturate the actuator to a sane range to keep the fixed-point
        // arithmetic bounded even under wildly corrupted control values.
        let u = u.clamp(-(1 << 24), 1 << 24);
        let speed = self.speed as i64;
        let next = speed + u * Self::B_NUM / Self::B_DEN - speed * Self::A_NUM / Self::A_DEN;
        self.speed = next.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        self.history.push(self.speed);
        vec![self.setpoint, self.speed]
    }

    fn reset(&mut self) {
        self.speed = 0;
        self.history.clear();
    }
}

/// A water-tank level plant with an inflow disturbance: a second,
/// structurally different control scenario.
///
/// Inputs to the target: `[setpoint, level]`.
/// Outputs from the target: `[valve_command]` (0..=SCALE, clamped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaterTankEnv {
    setpoint: i32,
    level: i32,
    inflow: i32,
    history: Vec<i32>,
}

impl WaterTankEnv {
    /// Creates a tank with a constant disturbance inflow (fixed point per
    /// iteration).
    pub fn new(setpoint: i32, inflow: i32) -> WaterTankEnv {
        WaterTankEnv {
            setpoint,
            level: 0,
            inflow,
            history: Vec::new(),
        }
    }

    /// Current level (fixed point).
    pub fn level(&self) -> i32 {
        self.level
    }

    /// Level trajectory.
    pub fn history(&self) -> &[i32] {
        &self.history
    }
}

impl Environment for WaterTankEnv {
    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn exchange(&mut self, outputs: &[i32]) -> Vec<i32> {
        // Valve command drains proportionally to the command and the level.
        let valve = outputs.first().copied().unwrap_or(0).clamp(0, SCALE) as i64;
        let level = self.level as i64;
        let drain = level * valve / (SCALE as i64) / 4;
        let next = (level + self.inflow as i64 - drain).max(0);
        self.level = next.min(i32::MAX as i64) as i32;
        self.history.push(self.level);
        vec![self.setpoint, self.level]
    }

    fn reset(&mut self) {
        self.level = 0;
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial host-side proportional controller, used to validate the
    /// plant dynamics independent of the target CPU.
    fn p_control(env: &mut dyn Environment, gain: i64, iterations: usize) -> Vec<i32> {
        let mut inputs = env.exchange(&[0]);
        for _ in 0..iterations {
            let err = (inputs[0] - inputs[1]) as i64;
            let u = (err * gain / SCALE as i64) as i32;
            inputs = env.exchange(&[u]);
        }
        inputs
    }

    #[test]
    fn dc_motor_converges_under_p_control() {
        // With u = g*err the plant settles at the P-control fixed point
        // s* = 2g*sp / (1 + 2g) (steady state of s/8 = u/4), not at the
        // setpoint itself — only the integral term removes the offset.
        let mut env = DcMotorEnv::new(5 * SCALE);
        p_control(&mut env, 2 * SCALE as i64, 200);
        let expected = 2 * 2 * 5 * SCALE / (1 + 2 * 2); // g = 2
        let err = (env.speed() - expected).abs();
        assert!(
            err < SCALE / 8,
            "speed {} did not settle at the P fixed point {}",
            env.speed(),
            expected
        );
    }

    #[test]
    fn dc_motor_without_control_stays_at_rest() {
        let mut env = DcMotorEnv::new(5 * SCALE);
        for _ in 0..50 {
            env.exchange(&[0]);
        }
        assert_eq!(env.speed(), 0);
        assert_eq!(env.max_tail_error(10), 5 * SCALE);
    }

    #[test]
    fn dc_motor_survives_corrupted_actuation() {
        let mut env = DcMotorEnv::new(SCALE);
        env.exchange(&[i32::MAX]);
        env.exchange(&[i32::MIN]);
        // No panic / overflow; state stays bounded.
        assert!(env.speed().abs() < i32::MAX);
    }

    #[test]
    fn dc_motor_reset_restores_initial_state() {
        let mut env = DcMotorEnv::new(SCALE);
        env.exchange(&[100]);
        env.reset();
        assert_eq!(env.speed(), 0);
        assert!(env.history().is_empty());
    }

    #[test]
    fn water_tank_fills_without_valve() {
        let mut env = WaterTankEnv::new(10 * SCALE, SCALE / 4);
        for _ in 0..20 {
            env.exchange(&[0]);
        }
        assert_eq!(env.level(), 20 * (SCALE / 4));
    }

    #[test]
    fn water_tank_regulates_under_p_control() {
        let mut env = WaterTankEnv::new(4 * SCALE, SCALE / 4);
        // Proportional control on the level error, clamped valve.
        let mut inputs = env.exchange(&[0]);
        for _ in 0..500 {
            let err = (inputs[1] - inputs[0]) as i64; // above setpoint -> open
            let u = (err / 2).clamp(0, SCALE as i64) as i32;
            inputs = env.exchange(&[u]);
        }
        let err = (env.level() - 4 * SCALE).abs();
        assert!(
            err < 2 * SCALE,
            "level {} too far from setpoint",
            env.level()
        );
    }

    #[test]
    fn history_records_every_iteration() {
        let mut env = DcMotorEnv::new(SCALE);
        for _ in 0..7 {
            env.exchange(&[10]);
        }
        assert_eq!(env.history().len(), 7);
    }
}
