//! # goofi-envsim — environment simulators for target workloads
//!
//! GOOFI campaigns may run cyclic workloads that "exchange data with a user
//! provided environment simulator emulating the target system environment"
//! at every loop iteration (paper, Fig. 1 and Section 3.2). This crate
//! defines the [`Environment`] trait that the target adapters call at each
//! iteration boundary, plus ready-made environments: constants, scripted
//! sequences, a recording wrapper, and closed-loop plant models for the
//! control-application experiments (the companion paper \[12\] evaluated a
//! control algorithm; our plant is a DC-motor speed-control loop).
//!
//! All values are fixed-point integers ([`SCALE`] units per 1.0) because
//! the target CPU is integer-only.
//!
//! # Examples
//!
//! ```
//! use goofi_envsim::{DcMotorEnv, Environment, SCALE};
//!
//! let mut env = DcMotorEnv::new(5 * SCALE); // setpoint = 5.0
//! let inputs = env.exchange(&[0]);          // zero control signal
//! assert_eq!(inputs.len(), 2);              // [setpoint, measured speed]
//! assert_eq!(inputs[0], 5 * SCALE);
//! ```

#![warn(missing_docs)]

mod plants;
mod record;

pub use plants::{DcMotorEnv, WaterTankEnv};
pub use record::RecordingEnv;

/// Fixed-point scale: `SCALE` integer units represent 1.0.
pub const SCALE: i32 = 256;

/// An environment the target system interacts with once per workload
/// iteration.
///
/// At each `sync` point the target adapter reads the workload's output
/// words from target memory, calls [`Environment::exchange`], and writes
/// the returned input words back into target memory before resuming.
pub trait Environment {
    /// Number of input words the environment supplies to the target.
    fn num_inputs(&self) -> usize;

    /// Number of output words the environment consumes from the target.
    fn num_outputs(&self) -> usize;

    /// Advances the environment one iteration: consumes the target's
    /// outputs, returns the next inputs (length [`Environment::num_inputs`]).
    fn exchange(&mut self, outputs: &[i32]) -> Vec<i32>;

    /// Restores the initial environment state (between experiments).
    fn reset(&mut self);
}

/// An environment that always supplies the same inputs and ignores outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantEnv {
    inputs: Vec<i32>,
}

impl ConstantEnv {
    /// Creates an environment supplying `inputs` every iteration.
    pub fn new(inputs: Vec<i32>) -> ConstantEnv {
        ConstantEnv { inputs }
    }
}

impl Environment for ConstantEnv {
    fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    fn num_outputs(&self) -> usize {
        0
    }

    fn exchange(&mut self, _outputs: &[i32]) -> Vec<i32> {
        self.inputs.clone()
    }

    fn reset(&mut self) {}
}

/// An environment that replays a scripted sequence of input vectors,
/// holding the last vector once the script is exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedEnv {
    script: Vec<Vec<i32>>,
    cursor: usize,
}

impl ScriptedEnv {
    /// Creates a scripted environment.
    ///
    /// # Panics
    ///
    /// Panics if the script is empty or its vectors have differing lengths.
    pub fn new(script: Vec<Vec<i32>>) -> ScriptedEnv {
        assert!(!script.is_empty(), "script must not be empty");
        let width = script[0].len();
        assert!(
            script.iter().all(|v| v.len() == width),
            "script vectors must have equal lengths"
        );
        ScriptedEnv { script, cursor: 0 }
    }
}

impl Environment for ScriptedEnv {
    fn num_inputs(&self) -> usize {
        self.script[0].len()
    }

    fn num_outputs(&self) -> usize {
        0
    }

    fn exchange(&mut self, _outputs: &[i32]) -> Vec<i32> {
        let v = self.script[self.cursor.min(self.script.len() - 1)].clone();
        self.cursor += 1;
        v
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_env_repeats() {
        let mut e = ConstantEnv::new(vec![1, 2]);
        assert_eq!(e.exchange(&[]), vec![1, 2]);
        assert_eq!(e.exchange(&[9]), vec![1, 2]);
        assert_eq!(e.num_inputs(), 2);
    }

    #[test]
    fn scripted_env_plays_then_holds() {
        let mut e = ScriptedEnv::new(vec![vec![1], vec![2]]);
        assert_eq!(e.exchange(&[]), vec![1]);
        assert_eq!(e.exchange(&[]), vec![2]);
        assert_eq!(e.exchange(&[]), vec![2], "holds last vector");
        e.reset();
        assert_eq!(e.exchange(&[]), vec![1]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn scripted_env_rejects_ragged_script() {
        ScriptedEnv::new(vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn environment_is_object_safe() {
        let envs: Vec<Box<dyn Environment>> = vec![
            Box::new(ConstantEnv::new(vec![0])),
            Box::new(ScriptedEnv::new(vec![vec![0]])),
        ];
        assert_eq!(envs.len(), 2);
    }
}
