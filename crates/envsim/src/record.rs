//! Recording wrapper capturing every exchange for later analysis.

use crate::Environment;

/// Wraps another environment and records every `(outputs, inputs)` pair.
///
/// The analysis phase compares the recorded I/O of a faulty run against the
/// reference run to detect wrong results and timeliness violations.
#[derive(Debug)]
pub struct RecordingEnv<E> {
    inner: E,
    exchanges: Vec<(Vec<i32>, Vec<i32>)>,
}

impl<E: Environment> RecordingEnv<E> {
    /// Wraps `inner`.
    pub fn new(inner: E) -> RecordingEnv<E> {
        RecordingEnv {
            inner,
            exchanges: Vec::new(),
        }
    }

    /// The recorded `(target outputs, env inputs)` pairs, in order.
    pub fn exchanges(&self) -> &[(Vec<i32>, Vec<i32>)] {
        &self.exchanges
    }

    /// The wrapped environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps, returning the inner environment.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: Environment> Environment for RecordingEnv<E> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn exchange(&mut self, outputs: &[i32]) -> Vec<i32> {
        let inputs = self.inner.exchange(outputs);
        self.exchanges.push((outputs.to_vec(), inputs.clone()));
        inputs
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.exchanges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantEnv;

    #[test]
    fn records_all_exchanges() {
        let mut env = RecordingEnv::new(ConstantEnv::new(vec![7]));
        env.exchange(&[1]);
        env.exchange(&[2]);
        assert_eq!(env.exchanges(), &[(vec![1], vec![7]), (vec![2], vec![7])]);
    }

    #[test]
    fn reset_clears_recording() {
        let mut env = RecordingEnv::new(ConstantEnv::new(vec![7]));
        env.exchange(&[1]);
        env.reset();
        assert!(env.exchanges().is_empty());
    }

    #[test]
    fn passthrough_of_dimensions() {
        let env = RecordingEnv::new(ConstantEnv::new(vec![1, 2, 3]));
        assert_eq!(env.num_inputs(), 3);
        assert_eq!(env.num_outputs(), 0);
    }
}
