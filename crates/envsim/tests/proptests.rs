//! Property tests: plants must stay bounded and deterministic no matter
//! what a fault-corrupted controller sends them.

use goofi_envsim::{
    ConstantEnv, DcMotorEnv, Environment, RecordingEnv, ScriptedEnv, WaterTankEnv, SCALE,
};
use proptest::prelude::*;

proptest! {
    /// The DC-motor plant never panics and never saturates to infinity-like
    /// behaviour for arbitrary (possibly insane) control sequences.
    #[test]
    fn dc_motor_is_total_under_arbitrary_control(us in proptest::collection::vec(any::<i32>(), 1..200)) {
        let mut env = DcMotorEnv::new(5 * SCALE);
        for u in &us {
            let inputs = env.exchange(&[*u]);
            prop_assert_eq!(inputs.len(), 2);
            prop_assert_eq!(inputs[0], 5 * SCALE);
        }
        prop_assert_eq!(env.history().len(), us.len());
    }

    /// The water tank level is always non-negative and monotone when the
    /// valve is closed.
    #[test]
    fn water_tank_level_invariants(valves in proptest::collection::vec(any::<i32>(), 1..100), inflow in 0i32..1000) {
        let mut env = WaterTankEnv::new(4 * SCALE, inflow);
        let mut last = 0;
        for v in &valves {
            env.exchange(&[*v]);
            prop_assert!(env.level() >= 0);
            if *v <= 0 {
                prop_assert!(env.level() >= last, "closed valve must not drain");
            }
            last = env.level();
        }
    }

    /// Reset restores exact initial behaviour for every environment kind.
    #[test]
    fn reset_restores_determinism(us in proptest::collection::vec(-1000i32..1000, 1..50)) {
        let run = |env: &mut dyn Environment| -> Vec<Vec<i32>> {
            us.iter().map(|u| env.exchange(&[*u])).collect()
        };
        let mut motors: Vec<Box<dyn Environment>> = vec![
            Box::new(DcMotorEnv::new(SCALE)),
            Box::new(WaterTankEnv::new(SCALE, 10)),
            Box::new(ConstantEnv::new(vec![1, 2])),
            Box::new(ScriptedEnv::new(vec![vec![1], vec![2], vec![3]])),
            Box::new(RecordingEnv::new(DcMotorEnv::new(SCALE))),
        ];
        for env in &mut motors {
            let first = run(env.as_mut());
            env.reset();
            let second = run(env.as_mut());
            prop_assert_eq!(&first, &second);
        }
    }

    /// The recorder is a faithful pass-through.
    #[test]
    fn recorder_is_transparent(us in proptest::collection::vec(-500i32..500, 1..50)) {
        let mut plain = DcMotorEnv::new(2 * SCALE);
        let mut recorded = RecordingEnv::new(DcMotorEnv::new(2 * SCALE));
        for u in &us {
            let a = plain.exchange(&[*u]);
            let b = recorded.exchange(&[*u]);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(recorded.exchanges().len(), us.len());
    }
}
