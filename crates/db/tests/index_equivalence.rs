//! Index correctness: every query answered through the declared
//! secondary index (the planner behind [`Database::select`]) must equal
//! the full-scan reference executor ([`Database::select_scan`]) on
//! randomized populations — including after deletes and after a
//! compacting rewrite through the paged engine.

use goofi_db::storage::{wal_path, write_database, PagedEngine};
use goofi_db::{Column, Database, Delete, Expr, Insert, Select, TableSchema, Value, ValueType};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

const TABLE: &str = "LoggedSystemState";

fn schema() -> TableSchema {
    TableSchema::new(
        TABLE,
        vec![
            Column::new("experimentName", ValueType::Text).primary_key(),
            Column::new("parentExperiment", ValueType::Text),
            Column::new("campaignName", ValueType::Text).not_null(),
            Column::new("experimentData", ValueType::Text).not_null(),
        ],
    )
    .unwrap()
    .with_index("byCampaignExperiment", &["campaignName", "experimentName"])
    .unwrap()
}

fn insert_population(db: &mut Database, pop: &[(u8, u8)]) -> usize {
    let mut inserted = 0;
    for (c, e) in pop {
        let campaign = format!("c{c}");
        let name = format!("{campaign}/e{e:03}");
        let row: Vec<Value> = vec![
            name.into(),
            Value::Null,
            campaign.into(),
            format!("{{\"n\":{e}}}").into(),
        ];
        if db.insert(Insert::into(TABLE, row)).is_ok() {
            inserted += 1;
        }
    }
    inserted
}

/// Asserts planner and reference executor agree on the standard point,
/// prefix and mixed-residual shapes for every (campaign, experiment)
/// probe.
fn assert_equivalent(db: &Database, campaigns: u8, exps: u8) {
    for c in 0..campaigns {
        let campaign = format!("c{c}");
        // Prefix query: campaign only (multi-row answer).
        let q = Select::from(TABLE).filter(Expr::col("campaignName").eq(Expr::lit(&*campaign)));
        assert_eq!(
            db.select(q.clone()).unwrap().rows,
            db.select_scan(q).unwrap().rows,
            "campaign prefix query diverged for {campaign}"
        );
        for e in 0..exps {
            let name = format!("{campaign}/e{e:03}");
            // Full composite key.
            let q = Select::from(TABLE)
                .filter(Expr::col("campaignName").eq(Expr::lit(&*campaign)))
                .filter(Expr::col("experimentName").eq(Expr::lit(&*name)));
            assert_eq!(
                db.select(q.clone()).unwrap().rows,
                db.select_scan(q).unwrap().rows,
                "composite key query diverged for {name}"
            );
            // Unique key alone (primary-key index path).
            let q = Select::from(TABLE).filter(Expr::col("experimentName").eq(Expr::lit(&*name)));
            assert_eq!(
                db.select(q.clone()).unwrap().rows,
                db.select_scan(q).unwrap().rows,
                "pk query diverged for {name}"
            );
        }
    }
}

proptest! {
    /// Random population, random deletions, then a compacting rewrite
    /// through the paged engine: the planner and the scan executor
    /// agree at every stage.
    #[test]
    fn indexed_queries_equal_full_scans(
        pop in proptest::collection::vec((0u8..5, 0u8..30), 1..120),
        doomed in proptest::collection::vec((0u8..5, 0u8..30), 0..20),
    ) {
        let mut db = Database::new();
        db.create_table(schema()).unwrap();
        let inserted = insert_population(&mut db, &pop);
        prop_assert!(inserted >= 1);
        assert_equivalent(&db, 5, 30);

        // Delete a random subset (by composite predicate, through the
        // normal DELETE path so index maintenance is exercised).
        for (c, e) in &doomed {
            let name = format!("c{c}/e{e:03}");
            db.delete(Delete {
                table: TABLE.into(),
                filter: Some(Expr::col("experimentName").eq(Expr::lit(name))),
            })
            .unwrap();
        }
        assert_equivalent(&db, 5, 30);

        // Compact through the paged engine and reload: the declared
        // index is rebuilt from the catalog schema and must still agree.
        let dir = std::env::temp_dir().join("goofi_index_equiv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("x{}.db", CASE.fetch_add(1, Ordering::Relaxed)));
        write_database(&path, &db).unwrap();
        let reloaded = PagedEngine::open(&path).unwrap().to_database().unwrap();
        prop_assert_eq!(
            db.logical_dump(),
            reloaded.logical_dump(),
            "compaction changed logical content"
        );
        assert_equivalent(&reloaded, 5, 30);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(wal_path(&path)).ok();
    }
}
