//! Crash-recovery fuzzing: truncating or corrupting the write-ahead
//! log's tail at an arbitrary byte offset must still leave the paged
//! file openable, and the recovered population must be a clean *prefix*
//! of the appended history — never a hole, never a mangled row, and
//! never anything older than the last checkpoint.

use goofi_db::storage::{wal_path, PagedEngine};
use goofi_db::{Column, TableSchema, Value, ValueType};
use proptest::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn schema() -> TableSchema {
    TableSchema::new(
        "runs",
        vec![
            Column::new("name", ValueType::Text).primary_key(),
            Column::new("payload", ValueType::Text),
            Column::new("blob", ValueType::Blob),
        ],
    )
    .unwrap()
}

fn row(i: usize) -> Vec<Value> {
    vec![
        format!("exp/{i:05}").into(),
        format!("{{\"fault\":{i},\"outcome\":\"ok\"}}").into(),
        vec![(i % 256) as u8; 24].into(),
    ]
}

/// Builds a paged file whose WAL holds rows `ckpt..total` (everything
/// before `ckpt` is checkpointed into the data file), then drops the
/// engine so both files are closed. The catalog checkpoint right after
/// `create_table` mirrors the engine's contract (and `GoofiStore`):
/// tables are durable only once checkpointed.
fn build(path: &Path, total: usize, ckpt: usize) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal_path(path));
    let mut engine = PagedEngine::create(path).unwrap();
    engine.create_table(&schema()).unwrap();
    engine.checkpoint().unwrap();
    for i in 0..total {
        engine.append("runs", &row(i)).unwrap();
        if i + 1 == ckpt {
            engine.checkpoint().unwrap();
        }
    }
}

/// Opens the (possibly damaged) file and asserts the prefix property:
/// the recovered rows are exactly `row(0)..row(k)` for some
/// `ckpt <= k <= total`, and the engine still accepts appends.
fn assert_prefix(path: &Path, total: usize, ckpt: usize) -> usize {
    let mut engine = PagedEngine::open(path).unwrap();
    let rows = engine.rows("runs").unwrap();
    assert!(rows.len() >= ckpt, "lost checkpointed rows: {}", rows.len());
    assert!(rows.len() <= total);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r, &row(i), "recovered row {i} differs");
    }
    // The recovered engine must stay writable and indexable.
    let k = rows.len();
    engine.append("runs", &row(total + 7)).unwrap();
    let got = engine
        .pk_get("runs", &Value::from(format!("exp/{:05}", total + 7)))
        .unwrap();
    assert_eq!(got, Some(row(total + 7)));
    k
}

proptest! {
    /// Cutting the WAL anywhere — record boundary or mid-record —
    /// recovers a clean prefix.
    #[test]
    fn truncated_wal_tail_recovers_prefix(
        total in 24usize..90,
        ckpt_num in 0u8..4,
        cut_permille in 0u32..=1000,
    ) {
        let ckpt = total * usize::from(ckpt_num) / 4;
        let dir = std::env::temp_dir().join("goofi_wal_fuzz");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{}.db", CASE.fetch_add(1, Ordering::Relaxed)));
        build(&path, total, ckpt);

        let wal = wal_path(&path);
        let bytes = std::fs::read(&wal).unwrap();
        let cut = bytes.len() * cut_permille as usize / 1000;
        std::fs::write(&wal, &bytes[..cut]).unwrap();

        let recovered = assert_prefix(&path, total, ckpt);
        // A full-length WAL must lose nothing at all.
        if cut == bytes.len() {
            prop_assert_eq!(recovered, total);
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();
    }

    /// Flipping any single byte of the WAL is caught by the per-record
    /// checksum: recovery keeps the records before the damage and
    /// discards the rest, still yielding a clean prefix.
    #[test]
    fn corrupted_wal_byte_recovers_prefix(
        total in 24usize..90,
        ckpt_num in 0u8..4,
        pos_permille in 0u32..1000,
        xor in 1u8..=255,
    ) {
        let ckpt = total * usize::from(ckpt_num) / 4;
        let dir = std::env::temp_dir().join("goofi_wal_fuzz");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("c{}.db", CASE.fetch_add(1, Ordering::Relaxed)));
        build(&path, total, ckpt);

        let wal = wal_path(&path);
        let mut bytes = std::fs::read(&wal).unwrap();
        if !bytes.is_empty() {
            let pos = (bytes.len() - 1) * pos_permille as usize / 1000;
            bytes[pos] ^= xor;
            std::fs::write(&wal, &bytes).unwrap();
        }

        assert_prefix(&path, total, ckpt);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();
    }

    /// A deleted WAL behaves like an empty one: exactly the
    /// checkpointed rows survive.
    #[test]
    fn missing_wal_recovers_checkpoint(total in 24usize..60, ckpt_num in 1u8..=4) {
        let ckpt = total * usize::from(ckpt_num) / 4;
        let dir = std::env::temp_dir().join("goofi_wal_fuzz");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("m{}.db", CASE.fetch_add(1, Ordering::Relaxed)));
        build(&path, total, ckpt);

        let wal = wal_path(&path);
        std::fs::remove_file(&wal).ok();
        let recovered = assert_prefix(&path, total, ckpt);
        prop_assert_eq!(recovered, ckpt);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();
    }
}
