//! Property-based tests for the database engine invariants.

use goofi_db::{Column, Database, DbError, Expr, Insert, Select, TableSchema, Value, ValueType};
use proptest::prelude::*;

fn fresh_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                Column::new("id", ValueType::Integer).primary_key(),
                Column::new("name", ValueType::Text),
                Column::new("score", ValueType::Real),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

proptest! {
    /// Inserting N rows with distinct keys yields N rows; duplicate keys are
    /// rejected and leave the count unchanged.
    #[test]
    fn insert_count_matches_distinct_keys(keys in proptest::collection::vec(0i64..50, 1..40)) {
        let mut db = fresh_db();
        let mut expected = std::collections::HashSet::new();
        for k in &keys {
            let res = db.insert(Insert::into(
                "t",
                vec![(*k).into(), format!("row{k}").into(), (*k as f64).into()],
            ));
            if expected.insert(*k) {
                prop_assert!(res.is_ok());
            } else {
                let is_unique_violation = matches!(res, Err(DbError::UniqueViolation { .. }));
                prop_assert!(is_unique_violation);
            }
        }
        let rs = db.select(Select::from("t")).unwrap();
        prop_assert_eq!(rs.len(), expected.len());
    }

    /// SELECT with an equality filter returns exactly the matching rows.
    #[test]
    fn filter_returns_exact_matches(rows in proptest::collection::hash_set(0i64..100, 0..30), probe in 0i64..100) {
        let mut db = fresh_db();
        for k in &rows {
            db.insert(Insert::into("t", vec![(*k).into(), Value::Null, Value::Null])).unwrap();
        }
        let rs = db.select(Select::from("t").filter(Expr::col("id").eq(Expr::lit(probe)))).unwrap();
        prop_assert_eq!(rs.len(), usize::from(rows.contains(&probe)));
    }

    /// DELETE then SELECT never sees deleted rows; sum of kept + deleted == total.
    #[test]
    fn delete_partitions_rows(rows in proptest::collection::hash_set(0i64..100, 0..30), cutoff in 0i64..100) {
        let mut db = fresh_db();
        for k in &rows {
            db.insert(Insert::into("t", vec![(*k).into(), Value::Null, Value::Null])).unwrap();
        }
        let deleted = db.delete(goofi_db::Delete {
            table: "t".into(),
            filter: Some(Expr::Binary {
                op: goofi_db::BinOp::Lt,
                lhs: Box::new(Expr::col("id")),
                rhs: Box::new(Expr::lit(cutoff)),
            }),
        }).unwrap();
        let remaining = db.select(Select::from("t")).unwrap().len();
        prop_assert_eq!(deleted + remaining, rows.len());
        let rs = db.select(Select::from("t")).unwrap();
        for row in &rs.rows {
            prop_assert!(row[0].as_integer().unwrap() >= cutoff);
        }
    }

    /// JSON persistence is lossless for arbitrary text and blob payloads.
    #[test]
    fn persistence_roundtrip(entries in proptest::collection::vec(("[a-zA-Z0-9 ']{0,20}", proptest::collection::vec(any::<u8>(), 0..32)), 0..20)) {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "log",
            vec![
                Column::new("id", ValueType::Integer).primary_key(),
                Column::new("txt", ValueType::Text),
                Column::new("bin", ValueType::Blob),
            ],
        ).unwrap()).unwrap();
        for (i, (txt, bin)) in entries.iter().enumerate() {
            db.insert(Insert::into("log", vec![i.into(), txt.clone().into(), bin.clone().into()])).unwrap();
        }
        let restored = Database::from_json(&db.to_json().unwrap()).unwrap();
        let a = db.select(Select::from("log")).unwrap();
        let b = restored.select(Select::from("log")).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Transactions: rollback always restores the exact pre-transaction
    /// result set, regardless of the operations inside.
    #[test]
    fn rollback_is_exact(seed in proptest::collection::vec(0i64..20, 0..10), ops in proptest::collection::vec(0i64..20, 0..10)) {
        let mut db = fresh_db();
        for k in &seed {
            let _ = db.insert(Insert::into("t", vec![(*k).into(), Value::Null, Value::Null]));
        }
        let before = db.select(Select::from("t")).unwrap();
        db.begin_transaction();
        for k in &ops {
            if k % 2 == 0 {
                let _ = db.insert(Insert::into("t", vec![(k + 100).into(), Value::Null, Value::Null]));
            } else {
                let _ = db.delete(goofi_db::Delete {
                    table: "t".into(),
                    filter: Some(Expr::col("id").eq(Expr::lit(*k))),
                });
            }
        }
        db.rollback().unwrap();
        let after = db.select(Select::from("t")).unwrap();
        prop_assert_eq!(before, after);
    }

    /// SQL roundtrip: inserting via SQL text and via the programmatic API
    /// agree.
    #[test]
    fn sql_and_api_agree(k in 0i64..1000, name in "[a-zA-Z]{1,12}") {
        let mut db1 = fresh_db();
        let mut db2 = fresh_db();
        db1.execute_sql(&format!("INSERT INTO t VALUES ({k}, '{name}', 1.5)")).unwrap();
        db2.insert(Insert::into("t", vec![k.into(), name.as_str().into(), 1.5.into()])).unwrap();
        let a = db1.select(Select::from("t")).unwrap();
        let b = db2.select(Select::from("t")).unwrap();
        prop_assert_eq!(a, b);
    }

    /// COUNT(*) equals the number of rows matching the same WHERE clause.
    #[test]
    fn count_consistent_with_select(rows in proptest::collection::hash_set(0i64..60, 0..25), cutoff in 0i64..60) {
        let mut db = fresh_db();
        for k in &rows {
            db.insert(Insert::into("t", vec![(*k).into(), Value::Null, Value::Null])).unwrap();
        }
        let rs = db.query(&format!("SELECT COUNT(*) AS n FROM t WHERE id >= {cutoff}")).unwrap();
        let count = rs.scalar().unwrap().as_integer().unwrap() as usize;
        let listed = db.query(&format!("SELECT id FROM t WHERE id >= {cutoff}")).unwrap().len();
        prop_assert_eq!(count, listed);
    }
}
