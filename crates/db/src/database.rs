//! The database engine: catalog, statement execution, referential integrity.

use crate::error::DbError;
use crate::expr::{BinOp, Expr};
use crate::query::{AggFunc, Delete, Insert, ResultSet, Select, SelectItem, SortOrder, Update};
use crate::schema::TableSchema;
use crate::table::{IndexKey, Row, Table};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// An embedded relational database.
///
/// Supports typed tables with primary keys, UNIQUE and NOT NULL constraints,
/// and foreign keys with *restrict* semantics (inserts must reference an
/// existing parent; deleting or re-keying a referenced parent fails), which
/// is exactly the consistency guarantee the GOOFI paper relies on for its
/// `TargetSystemData` → `CampaignData` → `LoggedSystemState` schema.
///
/// # Examples
///
/// ```
/// use goofi_db::{Database, Column, TableSchema, ValueType, Insert, Select, Expr};
///
/// # fn main() -> Result<(), goofi_db::DbError> {
/// let mut db = Database::new();
/// db.create_table(TableSchema::new(
///     "CampaignData",
///     vec![
///         Column::new("campaignName", ValueType::Text).primary_key(),
///         Column::new("nrOfExperiments", ValueType::Integer),
///     ],
/// )?)?;
/// db.insert(Insert::into("CampaignData", vec!["c1".into(), 100.into()]))?;
/// let rs = db.select(
///     Select::from("CampaignData").filter(Expr::col("campaignName").eq(Expr::lit("c1"))),
/// )?;
/// assert_eq!(rs.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    #[serde(skip)]
    snapshots: Vec<BTreeMap<String, Table>>,
}

/// Header of a joined row set: `(qualifier, column name)` per position.
type Header = Vec<(String, String)>;

fn resolver<'a>(
    header: &'a Header,
    row: &'a [Value],
) -> impl Fn(Option<&str>, &str) -> Result<Value, DbError> + 'a {
    move |table: Option<&str>, name: &str| {
        let mut found: Option<usize> = None;
        for (i, (qual, col)) in header.iter().enumerate() {
            if col == name && table.is_none_or(|t| t == qual) {
                if found.is_some() && table.is_none() {
                    return Err(DbError::Eval(format!("ambiguous column `{name}`")));
                }
                found = Some(i);
                if table.is_some() {
                    break;
                }
            }
        }
        match found {
            Some(i) => Ok(row[i].clone()),
            None => Err(DbError::Eval(format!(
                "unknown column `{}{name}`",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))),
        }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] if the name is taken;
    /// [`DbError::ForeignKeyViolation`] if a declared foreign key references
    /// a missing table or a non-UNIQUE parent column. Self-references (as in
    /// the paper's `parentExperiment` → `experimentName`) are allowed.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DbError> {
        if self.tables.contains_key(schema.name()) {
            return Err(DbError::TableExists(schema.name().to_owned()));
        }
        for (ci, fk) in schema.foreign_keys() {
            let parent = if fk.parent_table == schema.name() {
                &schema
            } else {
                self.tables
                    .get(&fk.parent_table)
                    .map(|t| t.schema())
                    .ok_or_else(|| DbError::ForeignKeyViolation {
                        table: schema.name().to_owned(),
                        column: schema.columns()[ci].name().to_owned(),
                        detail: format!("parent table `{}` does not exist", fk.parent_table),
                    })?
            };
            let pcol =
                parent
                    .column(&fk.parent_column)
                    .ok_or_else(|| DbError::ForeignKeyViolation {
                        table: schema.name().to_owned(),
                        column: schema.columns()[ci].name().to_owned(),
                        detail: format!(
                            "parent column `{}.{}` does not exist",
                            fk.parent_table, fk.parent_column
                        ),
                    })?;
            if !pcol.is_unique() {
                return Err(DbError::ForeignKeyViolation {
                    table: schema.name().to_owned(),
                    column: schema.columns()[ci].name().to_owned(),
                    detail: format!(
                        "parent column `{}.{}` is not UNIQUE",
                        fk.parent_table, fk.parent_column
                    ),
                });
            }
        }
        self.tables
            .insert(schema.name().to_owned(), Table::new(schema));
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`]; [`DbError::ForeignKeyViolation`] if another
    /// table declares a foreign key into this one.
    pub fn drop_table(&mut self, name: &str) -> Result<(), DbError> {
        if !self.tables.contains_key(name) {
            return Err(DbError::NoSuchTable(name.to_owned()));
        }
        for (tname, table) in &self.tables {
            if tname == name {
                continue;
            }
            for (ci, fk) in table.schema().foreign_keys() {
                if fk.parent_table == name {
                    return Err(DbError::ForeignKeyViolation {
                        table: tname.clone(),
                        column: table.schema().columns()[ci].name().to_owned(),
                        detail: format!("table `{name}` is referenced and cannot be dropped"),
                    });
                }
            }
        }
        self.tables.remove(name);
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Rebuilds all table indexes from row storage (used after load).
    pub(crate) fn rebuild_all_indexes(&mut self) {
        for table in self.tables.values_mut() {
            table.rebuild_indexes();
        }
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Installs a fully-built table without foreign-key validation, for
    /// the paged engine's load path. Replaces any table of the same name.
    pub(crate) fn install_table(&mut self, table: Table) {
        self.tables.insert(table.schema().name().to_owned(), table);
    }

    /// Declares a secondary index on `table`, indexing current and all
    /// future rows. A no-op when the table already has an index of that
    /// name — callers use this to migrate databases saved before the
    /// index was declared in the schema.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] for an unknown table, [`DbError::Parse`]
    /// for an empty or unknown column list.
    pub fn declare_index(
        &mut self,
        table: &str,
        name: &str,
        columns: &[&str],
    ) -> Result<(), DbError> {
        self.table_mut(table)?.declare_index(name, columns)
    }

    // ------------------------------------------------------------------
    // Transactions (single level, snapshot based)
    // ------------------------------------------------------------------

    /// Begins a transaction; [`Database::rollback`] restores the state at
    /// this point. Transactions may nest.
    pub fn begin_transaction(&mut self) {
        self.snapshots.push(self.tables.clone());
    }

    /// Commits the innermost transaction.
    ///
    /// # Errors
    ///
    /// [`DbError::NoTransaction`] if none is active.
    pub fn commit(&mut self) -> Result<(), DbError> {
        self.snapshots
            .pop()
            .map(|_| ())
            .ok_or(DbError::NoTransaction)
    }

    /// Rolls back the innermost transaction.
    ///
    /// # Errors
    ///
    /// [`DbError::NoTransaction`] if none is active.
    pub fn rollback(&mut self) -> Result<(), DbError> {
        match self.snapshots.pop() {
            Some(snap) => {
                self.tables = snap;
                Ok(())
            }
            None => Err(DbError::NoTransaction),
        }
    }

    /// Whether a transaction is active.
    pub fn in_transaction(&self) -> bool {
        !self.snapshots.is_empty()
    }

    // ------------------------------------------------------------------
    // Foreign-key checks
    // ------------------------------------------------------------------

    fn check_fk_parents(&self, table: &str, row: &Row) -> Result<(), DbError> {
        let schema = self.table(table)?.schema().clone();
        for (ci, fk) in schema.foreign_keys() {
            let v = &row[ci];
            if v.is_null() {
                continue;
            }
            let parent = self.table(&fk.parent_table)?;
            let pci = parent
                .schema()
                .column_index(&fk.parent_column)
                .expect("validated at create_table");
            if !parent.contains_value(pci, v) {
                return Err(DbError::ForeignKeyViolation {
                    table: table.to_owned(),
                    column: schema.columns()[ci].name().to_owned(),
                    detail: format!(
                        "value {v} has no parent in `{}.{}`",
                        fk.parent_table, fk.parent_column
                    ),
                });
            }
        }
        Ok(())
    }

    /// Checks that removing `keys` (values of `parent_col` in `parent`) does
    /// not orphan child rows. `exempt` lists row ids in `parent` itself that
    /// are also being removed (for self-referencing tables).
    fn check_no_children(
        &self,
        parent: &str,
        removed: &[(usize, Row)],
        exempt: &HashSet<usize>,
    ) -> Result<(), DbError> {
        for (tname, table) in &self.tables {
            for (ci, fk) in table.schema().foreign_keys() {
                if fk.parent_table != parent {
                    continue;
                }
                let pci = self
                    .table(parent)?
                    .schema()
                    .column_index(&fk.parent_column)
                    .expect("validated at create_table");
                for (_, row) in removed {
                    let key = &row[pci];
                    if key.is_null() {
                        continue;
                    }
                    let orphan = table.iter().any(|(rid, child)| {
                        let self_removed = tname == parent && exempt.contains(&rid);
                        !self_removed && child[ci].sql_eq(key) == Some(true)
                    });
                    if orphan {
                        return Err(DbError::ForeignKeyViolation {
                            table: tname.clone(),
                            column: table.schema().columns()[ci].name().to_owned(),
                            detail: format!(
                                "row(s) still reference {key} in `{parent}.{}`",
                                fk.parent_column
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Executes an INSERT; returns the number of rows inserted.
    ///
    /// # Errors
    ///
    /// Constraint violations ([`DbError::UniqueViolation`],
    /// [`DbError::NullViolation`], [`DbError::ForeignKeyViolation`],
    /// [`DbError::TypeMismatch`], [`DbError::ArityMismatch`]) and
    /// [`DbError::NoSuchTable`] / [`DbError::NoSuchColumn`]. On error the
    /// statement is a no-op (all-or-nothing per statement).
    pub fn insert(&mut self, stmt: Insert) -> Result<usize, DbError> {
        // Map provided columns onto full-width rows (short borrow: the
        // schema is not cloned — inserts are the hot append path).
        let (arity, positions) = {
            let schema = self.table(&stmt.table)?.schema();
            let positions: Vec<usize> = match &stmt.columns {
                None => (0..schema.arity()).collect(),
                Some(cols) => {
                    let mut positions = Vec::with_capacity(cols.len());
                    for c in cols {
                        positions.push(schema.column_index(c).ok_or_else(|| {
                            DbError::NoSuchColumn {
                                table: stmt.table.clone(),
                                column: c.clone(),
                            }
                        })?);
                    }
                    positions
                }
            };
            (schema.arity(), positions)
        };
        let mut full_rows = Vec::with_capacity(stmt.rows.len());
        for row in stmt.rows {
            if row.len() != positions.len() {
                return Err(DbError::ArityMismatch {
                    expected: positions.len(),
                    got: row.len(),
                });
            }
            let mut full = vec![Value::Null; arity];
            for (pos, v) in positions.iter().zip(row) {
                full[*pos] = v;
            }
            full_rows.push(full);
        }
        // Validate everything up front so a failed statement changes nothing.
        let mut validated = Vec::with_capacity(full_rows.len());
        for row in full_rows {
            let row = self.table(&stmt.table)?.validate(row)?;
            validated.push(row);
        }
        let mut inserted = Vec::new();
        for row in validated {
            // Parent must exist *before* this row goes in, except that a
            // self-reference may point at a row inserted earlier in this
            // statement (already visible) — which insert-order handles.
            if let Err(e) = self.check_fk_parents(&stmt.table, &row) {
                // Undo partial statement.
                for id in inserted {
                    self.table_mut(&stmt.table)?.remove(id);
                }
                return Err(e);
            }
            match self.table_mut(&stmt.table)?.insert(row) {
                Ok(id) => inserted.push(id),
                Err(e) => {
                    for id in inserted {
                        self.table_mut(&stmt.table)?.remove(id);
                    }
                    return Err(e);
                }
            }
        }
        Ok(inserted.len())
    }

    /// Executes a DELETE; returns the number of rows deleted.
    ///
    /// # Errors
    ///
    /// [`DbError::ForeignKeyViolation`] if a surviving row still references
    /// a deleted one (restrict semantics); evaluation errors from the WHERE
    /// clause. On error nothing is deleted.
    pub fn delete(&mut self, stmt: Delete) -> Result<usize, DbError> {
        let table = self.table(&stmt.table)?;
        let header: Header = table
            .schema()
            .columns()
            .iter()
            .map(|c| (stmt.table.clone(), c.name().to_owned()))
            .collect();
        let mut doomed: Vec<(usize, Row)> = Vec::new();
        for (id, row) in table.iter() {
            let keep = match &stmt.filter {
                None => true,
                Some(f) => f.matches(&resolver(&header, row))?,
            };
            if keep {
                doomed.push((id, row.clone()));
            }
        }
        let exempt: HashSet<usize> = doomed.iter().map(|(id, _)| *id).collect();
        self.check_no_children(&stmt.table, &doomed, &exempt)?;
        let table = self.table_mut(&stmt.table)?;
        for (id, _) in &doomed {
            table.remove(*id);
        }
        Ok(doomed.len())
    }

    /// Compacts a table's row storage: trailing deleted slots are dropped
    /// so the serialised form carries no tombstones past the last live
    /// row. Live row ids never change. Callers that delete-and-reinsert
    /// rows (upserts) can vacuum between the two to keep the on-disk form
    /// identical to a table that never saw the delete.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`].
    pub fn vacuum(&mut self, table: &str) -> Result<(), DbError> {
        self.table_mut(table)?.truncate_tombstones();
        Ok(())
    }

    /// Executes an UPDATE; returns the number of rows updated.
    ///
    /// # Errors
    ///
    /// Constraint violations as for [`Database::insert`]; additionally
    /// re-keying a parent row that children still reference fails.
    pub fn update(&mut self, stmt: Update) -> Result<usize, DbError> {
        let schema = self.table(&stmt.table)?.schema().clone();
        let header: Header = schema
            .columns()
            .iter()
            .map(|c| (stmt.table.clone(), c.name().to_owned()))
            .collect();
        let mut assignments = Vec::with_capacity(stmt.assignments.len());
        for (col, expr) in &stmt.assignments {
            let ci = schema
                .column_index(col)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: stmt.table.clone(),
                    column: col.clone(),
                })?;
            assignments.push((ci, expr.clone()));
        }
        // Plan all updates first.
        let mut planned: Vec<(usize, Row, Row)> = Vec::new();
        {
            let table = self.table(&stmt.table)?;
            for (id, row) in table.iter() {
                let matched = match &stmt.filter {
                    None => true,
                    Some(f) => f.matches(&resolver(&header, row))?,
                };
                if !matched {
                    continue;
                }
                let mut new_row = row.clone();
                for (ci, expr) in &assignments {
                    new_row[*ci] = expr.eval(&resolver(&header, row))?;
                }
                planned.push((id, row.clone(), new_row));
            }
        }
        // Referential checks: changed keys must not orphan children; new FK
        // values must have parents.
        for (id, old, new) in &planned {
            let rekeyed: Vec<(usize, Row)> = schema
                .columns()
                .iter()
                .enumerate()
                .filter(|(ci, c)| c.is_unique() && old[*ci].sql_eq(&new[*ci]) != Some(true))
                .map(|_| (*id, old.clone()))
                .take(1)
                .collect();
            if !rekeyed.is_empty() {
                let exempt = HashSet::from([*id]);
                self.check_no_children(&stmt.table, &rekeyed, &exempt)?;
            }
            self.check_fk_parents_updated(&stmt.table, new)?;
        }
        // Apply with rollback on failure.
        let mut applied: Vec<(usize, Row)> = Vec::new();
        for (id, old, new) in planned.iter() {
            match self.table_mut(&stmt.table)?.replace(*id, new.clone()) {
                Ok(_) => applied.push((*id, old.clone())),
                Err(e) => {
                    for (id, old) in applied {
                        self.table_mut(&stmt.table)?
                            .replace(id, old)
                            .expect("restoring previous row cannot fail");
                    }
                    return Err(e);
                }
            }
        }
        Ok(planned.len())
    }

    fn check_fk_parents_updated(&self, table: &str, row: &Row) -> Result<(), DbError> {
        self.check_fk_parents(table, row)
    }

    /// Executes a SELECT.
    ///
    /// Joinless queries whose WHERE clause contains `column = literal`
    /// conjuncts are answered through an index when one applies — the
    /// primary key / a UNIQUE column, a declared secondary index
    /// ([`crate::IndexSpec`]) by longest column prefix, or a
    /// foreign-key child index — falling back to a full scan
    /// otherwise. The full WHERE clause is always re-applied as a
    /// residual filter, so index use never changes results (see
    /// [`Database::select_scan`] for the reference path).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] and expression-evaluation errors
    /// ([`DbError::Eval`]) for unknown/ambiguous columns or type errors.
    pub fn select(&self, stmt: Select) -> Result<ResultSet, DbError> {
        self.select_impl(stmt, true)
    }

    /// Executes a SELECT without index planning — every base row is
    /// scanned. Semantically identical to [`Database::select`]; kept
    /// public as the reference implementation index-equivalence tests
    /// compare against.
    ///
    /// # Errors
    ///
    /// As for [`Database::select`].
    pub fn select_scan(&self, stmt: Select) -> Result<ResultSet, DbError> {
        self.select_impl(stmt, false)
    }

    fn select_impl(&self, stmt: Select, use_indexes: bool) -> Result<ResultSet, DbError> {
        // 1. Bind the base table.
        let base = self.table(&stmt.table)?;
        let base_qual = stmt.alias.clone().unwrap_or_else(|| stmt.table.clone());
        let mut header: Header = base
            .schema()
            .columns()
            .iter()
            .map(|c| (base_qual.clone(), c.name().to_owned()))
            .collect();
        let planned = if use_indexes && stmt.joins.is_empty() {
            stmt.filter
                .as_ref()
                .and_then(|f| Self::plan_base_ids(base, &base_qual, f))
        } else {
            None
        };
        let mut rows: Vec<Vec<Value>> = match planned {
            // Ids come back ascending, matching full-scan row order.
            Some(ids) => ids
                .into_iter()
                .filter_map(|id| base.row(id))
                .cloned()
                .collect(),
            None => base.iter().map(|(_, r)| r.clone()).collect(),
        };

        // 2. Inner joins, left to right (nested loop).
        for join in &stmt.joins {
            let jt = self.table(&join.table)?;
            let qual = join.alias.clone().unwrap_or_else(|| join.table.clone());
            let mut new_header = header.clone();
            new_header.extend(
                jt.schema()
                    .columns()
                    .iter()
                    .map(|c| (qual.clone(), c.name().to_owned())),
            );
            let mut joined = Vec::new();
            for left in &rows {
                for (_, right) in jt.iter() {
                    let mut combined = left.clone();
                    combined.extend(right.iter().cloned());
                    if join.on.matches(&resolver(&new_header, &combined))? {
                        joined.push(combined);
                    }
                }
            }
            header = new_header;
            rows = joined;
        }

        // 3. WHERE.
        if let Some(filter) = &stmt.filter {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if filter.matches(&resolver(&header, &row))? {
                    kept.push(row);
                }
            }
            rows = kept;
        }

        let has_aggregate = stmt
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));

        if has_aggregate || !stmt.group_by.is_empty() {
            self.select_aggregated(&stmt, &header, rows)
        } else {
            self.select_plain(&stmt, &header, rows)
        }
    }

    /// Collects `column = literal` conjuncts of an AND-chain that bind
    /// base-table columns (unqualified or qualified with `qual`). Null
    /// literals are ignored: `col = NULL` is never true in SQL.
    fn eq_conjuncts<'a>(filter: &'a Expr, qual: &str, out: &mut Vec<(&'a str, &'a Value)>) {
        match filter {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                Self::eq_conjuncts(lhs, qual, out);
                Self::eq_conjuncts(rhs, qual, out);
            }
            Expr::Binary {
                op: BinOp::Eq,
                lhs,
                rhs,
            } => match (&**lhs, &**rhs) {
                (Expr::Column { table, name }, Expr::Literal(v))
                | (Expr::Literal(v), Expr::Column { table, name })
                    if table.as_deref().is_none_or(|t| t == qual) && !v.is_null() =>
                {
                    out.push((name.as_str(), v));
                }
                _ => {}
            },
            _ => {}
        }
    }

    /// Picks an access path for a joinless filtered select: the row ids
    /// (ascending) of a superset of the matching rows, or `None` when
    /// no index applies and the caller should scan. Index equality is
    /// `total_cmp`-based, which agrees with SQL `=` wherever the latter
    /// is true, so the residual filter only ever shrinks the set.
    fn plan_base_ids(table: &Table, qual: &str, filter: &Expr) -> Option<Vec<usize>> {
        let mut conjuncts: Vec<(&str, &Value)> = Vec::new();
        Self::eq_conjuncts(filter, qual, &mut conjuncts);
        if conjuncts.is_empty() {
            return None;
        }
        let schema = table.schema();
        let value_of = |col: &str| conjuncts.iter().find(|(c, _)| *c == col).map(|(_, v)| *v);
        // 1. A UNIQUE / PRIMARY KEY column pins at most one row.
        for (ci, col) in schema.columns().iter().enumerate() {
            if col.is_unique() {
                if let Some(v) = value_of(col.name()) {
                    return Some(table.lookup_unique(ci, v).into_iter().collect());
                }
            }
        }
        // 2. Declared secondary index with the longest bound prefix.
        let mut best: Option<(&str, Vec<Value>)> = None;
        for ix in schema.indexes() {
            let prefix: Vec<Value> = ix
                .columns
                .iter()
                .map_while(|c| value_of(c).cloned())
                .collect();
            if !prefix.is_empty() && best.as_ref().is_none_or(|(_, p)| p.len() < prefix.len()) {
                best = Some((&ix.name, prefix));
            }
        }
        if let Some((name, prefix)) = best {
            return table.secondary_scan(name, &prefix);
        }
        // 3. A foreign-key child column's multi-index.
        for (ci, _) in schema.foreign_keys() {
            let col = schema.columns()[ci].name();
            if schema.columns()[ci].is_unique() {
                continue; // already handled above
            }
            if let Some(v) = value_of(col) {
                return Some(table.lookup_multi(ci, v));
            }
        }
        None
    }

    /// Renders the database's logical content as canonical text: tables
    /// sorted by name, rows ordered by primary key (or whole-row order
    /// for keyless tables), values in their SQL display form. Two
    /// databases with the same logical content produce identical dumps
    /// regardless of storage engine, insertion order of equal keys, or
    /// tombstone layout — the determinism tests compare these.
    pub fn logical_dump(&self) -> String {
        let mut out = String::new();
        for (name, table) in &self.tables {
            out.push_str(&format!("== {name} ({})\n", table.len()));
            let mut rows: Vec<&Row> = table.iter().map(|(_, r)| r).collect();
            let pk = table.schema().primary_key_index();
            rows.sort_by(|a, b| match pk {
                Some(ci) => a[ci].total_cmp(&b[ci]),
                None => {
                    let mut ord = std::cmp::Ordering::Equal;
                    for (va, vb) in a.iter().zip(b.iter()) {
                        ord = va.total_cmp(vb);
                        if ord != std::cmp::Ordering::Equal {
                            break;
                        }
                    }
                    ord
                }
            });
            for row in rows {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                out.push_str(&cells.join(" | "));
                out.push('\n');
            }
        }
        out
    }

    fn select_plain(
        &self,
        stmt: &Select,
        header: &Header,
        mut rows: Vec<Vec<Value>>,
    ) -> Result<ResultSet, DbError> {
        // ORDER BY over input rows.
        if !stmt.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
            for row in rows {
                let mut keys = Vec::with_capacity(stmt.order_by.len());
                for (expr, _) in &stmt.order_by {
                    keys.push(expr.eval(&resolver(header, &row))?);
                }
                keyed.push((keys, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, dir)) in stmt.order_by.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = match dir {
                        SortOrder::Asc => ord,
                        SortOrder::Desc => ord.reverse(),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            rows = keyed.into_iter().map(|(_, r)| r).collect();
        }

        // OFFSET / LIMIT.
        let rows: Vec<Vec<Value>> = rows
            .into_iter()
            .skip(stmt.offset)
            .take(stmt.limit.unwrap_or(usize::MAX))
            .collect();

        // Projection.
        let (columns, projections) = self.projection_plan(stmt, header)?;
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut out = Vec::with_capacity(projections.len());
            for proj in &projections {
                out.push(match proj {
                    Projection::Position(i) => row[*i].clone(),
                    Projection::Expr(e) => e.eval(&resolver(header, row))?,
                });
            }
            out_rows.push(out);
        }
        Ok(ResultSet {
            columns,
            rows: out_rows,
        })
    }

    fn projection_plan(
        &self,
        stmt: &Select,
        header: &Header,
    ) -> Result<(Vec<String>, Vec<Projection>), DbError> {
        let mut columns = Vec::new();
        let mut projections = Vec::new();
        // Detect duplicate bare names so wildcard output qualifies them.
        let mut name_counts: BTreeMap<&str, usize> = BTreeMap::new();
        for (_, name) in header {
            *name_counts.entry(name.as_str()).or_default() += 1;
        }
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, (qual, name)) in header.iter().enumerate() {
                        let out_name = if name_counts[name.as_str()] > 1 {
                            format!("{qual}.{name}")
                        } else {
                            name.clone()
                        };
                        columns.push(out_name);
                        projections.push(Projection::Position(i));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr_name(expr)));
                    projections.push(Projection::Expr(expr.clone()));
                }
                SelectItem::Aggregate { .. } => {
                    return Err(DbError::Eval(
                        "aggregate in non-aggregated projection".into(),
                    ))
                }
            }
        }
        Ok((columns, projections))
    }

    fn select_aggregated(
        &self,
        stmt: &Select,
        header: &Header,
        rows: Vec<Vec<Value>>,
    ) -> Result<ResultSet, DbError> {
        // Group rows.
        let mut groups: BTreeMap<Vec<IndexKey>, Vec<Vec<Value>>> = BTreeMap::new();
        if stmt.group_by.is_empty() {
            groups.insert(Vec::new(), rows);
        } else {
            for row in rows {
                let mut key = Vec::with_capacity(stmt.group_by.len());
                for expr in &stmt.group_by {
                    key.push(IndexKey(expr.eval(&resolver(header, &row))?));
                }
                groups.entry(key).or_default().push(row);
            }
        }

        // Output columns.
        let mut columns = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(DbError::Eval(
                        "SELECT * cannot be combined with aggregation".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr_name(expr)));
                }
                SelectItem::Aggregate { func, arg, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| match arg {
                        Some(a) => format!("{func}({})", expr_name(a)),
                        None => format!("{func}(*)"),
                    }));
                }
            }
        }

        let mut out_rows = Vec::with_capacity(groups.len());
        for (_, group) in groups {
            let mut out = Vec::with_capacity(stmt.items.len());
            for item in &stmt.items {
                match item {
                    SelectItem::Wildcard => unreachable!("rejected above"),
                    SelectItem::Expr { expr, .. } => {
                        // Evaluated on the group's representative row; in
                        // well-formed queries `expr` appears in GROUP BY so
                        // every row of the group agrees.
                        let rep = group.first().ok_or_else(|| {
                            DbError::Eval("scalar select over empty group".into())
                        })?;
                        out.push(expr.eval(&resolver(header, rep))?);
                    }
                    SelectItem::Aggregate { func, arg, .. } => {
                        out.push(aggregate(*func, arg.as_ref(), header, &group)?);
                    }
                }
            }
            out_rows.push(out);
        }

        // ORDER BY over *output* columns (by name / alias).
        if !stmt.order_by.is_empty() {
            let out_header: Header = columns.iter().map(|c| (String::new(), c.clone())).collect();
            let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(out_rows.len());
            for row in out_rows {
                let mut keys = Vec::with_capacity(stmt.order_by.len());
                for (expr, _) in &stmt.order_by {
                    keys.push(expr.eval(&resolver(&out_header, &row))?);
                }
                keyed.push((keys, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, dir)) in stmt.order_by.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = match dir {
                        SortOrder::Asc => ord,
                        SortOrder::Desc => ord.reverse(),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            out_rows = keyed.into_iter().map(|(_, r)| r).collect();
        }

        let out_rows: Vec<Vec<Value>> = out_rows
            .into_iter()
            .skip(stmt.offset)
            .take(stmt.limit.unwrap_or(usize::MAX))
            .collect();

        Ok(ResultSet {
            columns,
            rows: out_rows,
        })
    }
}

enum Projection {
    Position(usize),
    Expr(Expr),
}

fn expr_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        _ => "expr".to_owned(),
    }
}

fn aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    header: &Header,
    group: &[Vec<Value>],
) -> Result<Value, DbError> {
    let mut values = Vec::new();
    match arg {
        None => {
            if func != AggFunc::Count {
                return Err(DbError::Eval(format!("{func} requires an argument")));
            }
            return Ok(Value::Integer(group.len() as i64));
        }
        Some(expr) => {
            for row in group {
                let v = expr.eval(&resolver(header, row))?;
                if !v.is_null() {
                    values.push(v);
                }
            }
        }
    }
    match func {
        AggFunc::Count => Ok(Value::Integer(values.len() as i64)),
        AggFunc::Min => Ok(values
            .into_iter()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(values
            .into_iter()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Integer(_)));
            if all_int && func == AggFunc::Sum {
                let mut sum: i64 = 0;
                for v in &values {
                    sum = sum
                        .checked_add(v.as_integer().expect("all integers"))
                        .ok_or_else(|| DbError::Eval("SUM overflow".into()))?;
                }
                Ok(Value::Integer(sum))
            } else {
                let mut sum = 0.0;
                for v in &values {
                    sum += v
                        .as_real()
                        .ok_or_else(|| DbError::Eval(format!("{func} over non-numeric {v}")))?;
                }
                Ok(Value::Real(if func == AggFunc::Avg {
                    sum / values.len() as f64
                } else {
                    sum
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::ValueType;

    fn goofi_schema() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "TargetSystemData",
                vec![
                    Column::new("testCardName", ValueType::Text).primary_key(),
                    Column::new("description", ValueType::Text),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "CampaignData",
                vec![
                    Column::new("campaignName", ValueType::Text).primary_key(),
                    Column::new("testCardName", ValueType::Text)
                        .not_null()
                        .references("TargetSystemData", "testCardName"),
                    Column::new("nrOfExperiments", ValueType::Integer),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "LoggedSystemState",
                vec![
                    Column::new("experimentName", ValueType::Text).primary_key(),
                    Column::new("parentExperiment", ValueType::Text)
                        .references("LoggedSystemState", "experimentName"),
                    Column::new("campaignName", ValueType::Text)
                        .not_null()
                        .references("CampaignData", "campaignName"),
                    Column::new("experimentData", ValueType::Text),
                    Column::new("stateVector", ValueType::Blob),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn seed(db: &mut Database) {
        db.insert(Insert::into(
            "TargetSystemData",
            vec!["thor-card".into(), "Thor RD test card".into()],
        ))
        .unwrap();
        db.insert(Insert::into(
            "CampaignData",
            vec!["c1".into(), "thor-card".into(), 100.into()],
        ))
        .unwrap();
        db.insert(Insert::into(
            "LoggedSystemState",
            vec![
                "E1".into(),
                Value::Null,
                "c1".into(),
                "loc=R3 bit=7".into(),
                vec![1u8, 2, 3].into(),
            ],
        ))
        .unwrap();
    }

    #[test]
    fn fk_insert_requires_parent() {
        let mut db = goofi_schema();
        let err = db
            .insert(Insert::into(
                "CampaignData",
                vec!["c1".into(), "missing-card".into(), 10.into()],
            ))
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn fk_delete_restricted() {
        let mut db = goofi_schema();
        seed(&mut db);
        let err = db
            .delete(Delete {
                table: "CampaignData".into(),
                filter: None,
            })
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
        // Delete child first, then parent succeeds.
        db.delete(Delete {
            table: "LoggedSystemState".into(),
            filter: None,
        })
        .unwrap();
        assert_eq!(
            db.delete(Delete {
                table: "CampaignData".into(),
                filter: None,
            })
            .unwrap(),
            1
        );
    }

    #[test]
    fn self_referencing_parent_experiment() {
        let mut db = goofi_schema();
        seed(&mut db);
        // E2 re-runs E1 in detail mode (paper Section 2.3).
        db.insert(Insert::into(
            "LoggedSystemState",
            vec![
                "E2".into(),
                "E1".into(),
                "c1".into(),
                "detail re-run".into(),
                vec![9u8].into(),
            ],
        ))
        .unwrap();
        // E1 cannot be deleted while E2 references it...
        let err = db
            .delete(Delete {
                table: "LoggedSystemState".into(),
                filter: Some(Expr::col("experimentName").eq(Expr::lit("E1"))),
            })
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
        // ...but deleting both at once is consistent.
        assert_eq!(
            db.delete(Delete {
                table: "LoggedSystemState".into(),
                filter: None,
            })
            .unwrap(),
            2
        );
    }

    #[test]
    fn fk_to_missing_table_rejected_at_create() {
        let mut db = Database::new();
        let err = db
            .create_table(
                TableSchema::new(
                    "t",
                    vec![Column::new("x", ValueType::Text).references("nope", "y")],
                )
                .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn drop_referenced_table_rejected() {
        let mut db = goofi_schema();
        let err = db.drop_table("TargetSystemData").unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
        db.drop_table("LoggedSystemState").unwrap();
        db.drop_table("CampaignData").unwrap();
        db.drop_table("TargetSystemData").unwrap();
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn select_with_join_tracks_campaign_of_parent() {
        let mut db = goofi_schema();
        seed(&mut db);
        let rs = db
            .select(
                Select::from("LoggedSystemState")
                    .join(
                        "CampaignData",
                        Expr::qcol("LoggedSystemState", "campaignName")
                            .eq(Expr::qcol("CampaignData", "campaignName")),
                    )
                    .columns(vec![
                        Expr::col("experimentName"),
                        Expr::col("nrOfExperiments"),
                    ]),
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Text("E1".into()));
        assert_eq!(rs.rows[0][1], Value::Integer(100));
    }

    #[test]
    fn aggregate_count_and_group_by() {
        let mut db = goofi_schema();
        seed(&mut db);
        db.insert(Insert::into(
            "LoggedSystemState",
            vec![
                "E2".into(),
                Value::Null,
                "c1".into(),
                "loc=R4 bit=1".into(),
                vec![].into(),
            ],
        ))
        .unwrap();
        let rs = db
            .select(
                Select::from("LoggedSystemState")
                    .item(SelectItem::Expr {
                        expr: Expr::col("campaignName"),
                        alias: None,
                    })
                    .item(SelectItem::Aggregate {
                        func: AggFunc::Count,
                        arg: None,
                        alias: Some("n".into()),
                    })
                    .group_by(Expr::col("campaignName")),
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Integer(2));
    }

    #[test]
    fn aggregate_without_group_by_on_empty_table() {
        let db = goofi_schema();
        let rs = db
            .select(Select::from("CampaignData").item(SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: None,
                alias: Some("n".into()),
            }))
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Integer(0)));
    }

    #[test]
    fn order_by_and_limit() {
        let mut db = goofi_schema();
        seed(&mut db);
        for i in 2..6 {
            db.insert(Insert::into(
                "LoggedSystemState",
                vec![
                    format!("E{i}").into(),
                    Value::Null,
                    "c1".into(),
                    Value::Null,
                    Value::Null,
                ],
            ))
            .unwrap();
        }
        let rs = db
            .select(
                Select::from("LoggedSystemState")
                    .columns(vec![Expr::col("experimentName")])
                    .order_by(Expr::col("experimentName"), SortOrder::Desc)
                    .limit(2)
                    .offset(1),
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Text("E4".into()));
        assert_eq!(rs.rows[1][0], Value::Text("E3".into()));
    }

    #[test]
    fn update_rewrites_and_respects_fk() {
        let mut db = goofi_schema();
        seed(&mut db);
        let n = db
            .update(Update {
                table: "CampaignData".into(),
                assignments: vec![(
                    "nrOfExperiments".into(),
                    Expr::col("nrOfExperiments")
                        .eq(Expr::lit(0))
                        .and(Expr::lit(true)),
                )],
                filter: Some(Expr::col("campaignName").eq(Expr::lit("c1"))),
            })
            .unwrap_err();
        // boolean into integer column -> type mismatch, nothing changed
        assert!(matches!(n, DbError::TypeMismatch { .. }));
        let n = db
            .update(Update {
                table: "CampaignData".into(),
                assignments: vec![(
                    "nrOfExperiments".into(),
                    Expr::Binary {
                        op: crate::expr::BinOp::Add,
                        lhs: Box::new(Expr::col("nrOfExperiments")),
                        rhs: Box::new(Expr::lit(1)),
                    },
                )],
                filter: None,
            })
            .unwrap();
        assert_eq!(n, 1);
        let rs = db
            .select(Select::from("CampaignData").columns(vec![Expr::col("nrOfExperiments")]))
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(101));
        // Re-keying the referenced campaign is rejected.
        let err = db
            .update(Update {
                table: "CampaignData".into(),
                assignments: vec![("campaignName".into(), Expr::lit("c9"))],
                filter: None,
            })
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn transaction_rollback_restores_state() {
        let mut db = goofi_schema();
        seed(&mut db);
        db.begin_transaction();
        db.delete(Delete {
            table: "LoggedSystemState".into(),
            filter: None,
        })
        .unwrap();
        assert!(db.table("LoggedSystemState").unwrap().is_empty());
        db.rollback().unwrap();
        assert_eq!(db.table("LoggedSystemState").unwrap().len(), 1);
        assert!(db.rollback().is_err());
    }

    #[test]
    fn transaction_commit_keeps_changes() {
        let mut db = goofi_schema();
        seed(&mut db);
        db.begin_transaction();
        db.delete(Delete {
            table: "LoggedSystemState".into(),
            filter: None,
        })
        .unwrap();
        db.commit().unwrap();
        assert!(db.table("LoggedSystemState").unwrap().is_empty());
    }

    #[test]
    fn failed_multi_row_insert_is_atomic() {
        let mut db = goofi_schema();
        seed(&mut db);
        let err = db
            .insert(Insert {
                table: "LoggedSystemState".into(),
                columns: Some(vec!["experimentName".into(), "campaignName".into()]),
                rows: vec![
                    vec!["E7".into(), "c1".into()],
                    vec!["E8".into(), "missing-campaign".into()],
                ],
            })
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
        // E7 must not have been inserted.
        let rs = db
            .select(
                Select::from("LoggedSystemState")
                    .filter(Expr::col("experimentName").eq(Expr::lit("E7"))),
            )
            .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn insert_with_column_list_defaults_null() {
        let mut db = goofi_schema();
        seed(&mut db);
        db.insert(Insert::with_columns(
            "LoggedSystemState",
            vec!["experimentName".into(), "campaignName".into()],
            vec![vec!["E9".into(), "c1".into()]],
        ))
        .unwrap();
        let rs = db
            .select(
                Select::from("LoggedSystemState")
                    .filter(Expr::col("experimentName").eq(Expr::lit("E9"))),
            )
            .unwrap();
        assert_eq!(rs.rows[0][1], Value::Null); // parentExperiment defaulted
    }

    #[test]
    fn ambiguous_unqualified_column_is_an_error() {
        let mut db = goofi_schema();
        seed(&mut db);
        let err = db
            .select(
                Select::from("LoggedSystemState")
                    .join(
                        "CampaignData",
                        Expr::qcol("LoggedSystemState", "campaignName")
                            .eq(Expr::qcol("CampaignData", "campaignName")),
                    )
                    .columns(vec![Expr::col("campaignName")]),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Eval(_)));
    }

    #[test]
    fn wildcard_join_qualifies_duplicate_names() {
        let mut db = goofi_schema();
        seed(&mut db);
        let rs = db
            .select(
                Select::from("LoggedSystemState").join(
                    "CampaignData",
                    Expr::qcol("LoggedSystemState", "campaignName")
                        .eq(Expr::qcol("CampaignData", "campaignName")),
                ),
            )
            .unwrap();
        assert!(rs
            .columns
            .contains(&"LoggedSystemState.campaignName".to_owned()));
        assert!(rs.columns.contains(&"CampaignData.campaignName".to_owned()));
    }
}
