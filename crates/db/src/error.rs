//! Error type for the database engine.

use std::fmt;

/// Errors produced by the database engine.
///
/// Every fallible public operation in [`crate::Database`] returns
/// `Result<_, DbError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow from the variant docs
pub enum DbError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name exists.
    NoSuchTable(String),
    /// No column with this name exists in the referenced table.
    NoSuchColumn { table: String, column: String },
    /// A value did not match the declared column type.
    TypeMismatch {
        table: String,
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// A row violated a NOT NULL constraint.
    NullViolation { table: String, column: String },
    /// A row violated a PRIMARY KEY or UNIQUE constraint.
    UniqueViolation { table: String, column: String },
    /// An insert or update referenced a missing parent row, or a delete
    /// would orphan child rows.
    ForeignKeyViolation {
        table: String,
        column: String,
        detail: String,
    },
    /// A row had the wrong number of values.
    ArityMismatch { expected: usize, got: usize },
    /// SQL text could not be tokenised or parsed.
    Parse(String),
    /// An expression could not be evaluated (e.g. type error at runtime).
    Eval(String),
    /// Persistence (save/load) failure.
    Io(String),
    /// The operation is not supported by this engine.
    Unsupported(String),
    /// No transaction is active.
    NoTransaction,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no such column `{column}` in table `{table}`")
            }
            DbError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for `{table}.{column}`: expected {expected}, got {got}"
            ),
            DbError::NullViolation { table, column } => {
                write!(f, "NOT NULL violation on `{table}.{column}`")
            }
            DbError::UniqueViolation { table, column } => {
                write!(f, "unique violation on `{table}.{column}`")
            }
            DbError::ForeignKeyViolation {
                table,
                column,
                detail,
            } => write!(f, "foreign key violation on `{table}.{column}`: {detail}"),
            DbError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, got {got}"
                )
            }
            DbError::Parse(msg) => write!(f, "SQL parse error: {msg}"),
            DbError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            DbError::Io(msg) => write!(f, "i/o error: {msg}"),
            DbError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            DbError::NoTransaction => write!(f, "no active transaction"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DbError::NoSuchTable("CampaignData".into());
        assert_eq!(e.to_string(), "no such table `CampaignData`");
        let e = DbError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbError>();
    }
}
