//! Programmatic statement types (the SQL layer lowers onto these).

use crate::expr::Expr;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sort direction for ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// Aggregate functions usable in a select list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)` (non-NULL count).
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        })
    }
}

/// One item of a select list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // item fields follow from the variant docs
pub enum SelectItem {
    /// `*` — all columns of all bound tables.
    Wildcard,
    /// A scalar expression with an optional output alias.
    Expr { expr: Expr, alias: Option<String> },
    /// An aggregate call; `arg` of `None` means `COUNT(*)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Expr>,
        alias: Option<String>,
    },
}

/// An inner join clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    /// Joined table name.
    pub table: String,
    /// Optional alias for the joined table.
    pub alias: Option<String>,
    /// Join condition.
    pub on: Expr,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    /// Base table name.
    pub table: String,
    /// Optional alias for the base table.
    pub alias: Option<String>,
    /// Inner joins, applied left to right.
    pub joins: Vec<Join>,
    /// Output columns.
    pub items: Vec<SelectItem>,
    /// WHERE clause.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY clauses (evaluated over input rows, or over output
    /// aliases when the query aggregates).
    pub order_by: Vec<(Expr, SortOrder)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: usize,
}

impl Select {
    /// Creates `SELECT * FROM table`.
    pub fn from(table: impl Into<String>) -> Select {
        Select {
            table: table.into(),
            alias: None,
            joins: Vec::new(),
            items: vec![SelectItem::Wildcard],
            filter: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: 0,
        }
    }

    /// Replaces the select list with the given expressions.
    pub fn columns(mut self, cols: impl IntoIterator<Item = Expr>) -> Select {
        self.items = cols
            .into_iter()
            .map(|expr| SelectItem::Expr { expr, alias: None })
            .collect();
        self
    }

    /// Adds one select item.
    pub fn item(mut self, item: SelectItem) -> Select {
        if self.items == vec![SelectItem::Wildcard] {
            self.items.clear();
        }
        self.items.push(item);
        self
    }

    /// Sets the WHERE clause (ANDed with any existing clause).
    pub fn filter(mut self, expr: Expr) -> Select {
        self.filter = Some(match self.filter.take() {
            Some(prev) => prev.and(expr),
            None => expr,
        });
        self
    }

    /// Adds an inner join.
    pub fn join(mut self, table: impl Into<String>, on: Expr) -> Select {
        self.joins.push(Join {
            table: table.into(),
            alias: None,
            on,
        });
        self
    }

    /// Adds an ORDER BY clause.
    pub fn order_by(mut self, expr: Expr, order: SortOrder) -> Select {
        self.order_by.push((expr, order));
        self
    }

    /// Adds a GROUP BY expression.
    pub fn group_by(mut self, expr: Expr) -> Select {
        self.group_by.push(expr);
        self
    }

    /// Sets LIMIT.
    pub fn limit(mut self, n: usize) -> Select {
        self.limit = Some(n);
        self
    }

    /// Sets OFFSET.
    pub fn offset(mut self, n: usize) -> Select {
        self.offset = n;
        self
    }
}

/// An INSERT statement. `columns` of `None` means "all, in declaration
/// order"; omitted columns receive NULL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Rows to insert.
    pub rows: Vec<Vec<Value>>,
}

impl Insert {
    /// Creates an insert of a single full-width row.
    pub fn into(table: impl Into<String>, row: Vec<Value>) -> Insert {
        Insert {
            table: table.into(),
            columns: None,
            rows: vec![row],
        }
    }

    /// Creates an insert with an explicit column list.
    pub fn with_columns(
        table: impl Into<String>,
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    ) -> Insert {
        Insert {
            table: table.into(),
            columns: Some(columns),
            rows,
        }
    }
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET column = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// WHERE clause; `None` updates every row.
    pub filter: Option<Expr>,
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// WHERE clause; `None` deletes every row.
    pub filter: Option<Expr>,
}

/// The result of a SELECT: named columns and rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Index of an output column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The single value of a single-row, single-column result.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Iterates the values of one named column.
    pub fn column_values<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a Value> + 'a {
        let idx = self.column_index(name);
        self.rows.iter().filter_map(move |r| idx.map(|i| &r[i]))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_builder_composes() {
        let s = Select::from("LoggedSystemState")
            .filter(Expr::col("campaignName").eq(Expr::lit("c1")))
            .filter(Expr::col("experimentName").eq(Expr::lit("E1")))
            .order_by(Expr::col("experimentName"), SortOrder::Asc)
            .limit(10)
            .offset(2);
        assert!(matches!(s.filter, Some(Expr::Binary { .. })));
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, 2);
    }

    #[test]
    fn item_replaces_wildcard() {
        let s = Select::from("t").item(SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: None,
            alias: Some("n".into()),
        });
        assert_eq!(s.items.len(), 1);
        assert!(!s.items.contains(&SelectItem::Wildcard));
    }

    #[test]
    fn result_set_helpers() {
        let rs = ResultSet {
            columns: vec!["n".into()],
            rows: vec![vec![Value::Integer(7)]],
        };
        assert_eq!(rs.scalar(), Some(&Value::Integer(7)));
        assert_eq!(rs.column_index("n"), Some(0));
        assert_eq!(rs.column_values("n").count(), 1);
        assert_eq!(rs.len(), 1);
    }
}
