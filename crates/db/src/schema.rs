//! Table schemas: columns, types and constraints.
//!
//! The GOOFI paper (Fig. 4) relies on primary keys and foreign keys to
//! "prevent inconsistencies in the database"; this module carries those
//! declarations, and [`crate::Database`] enforces them.

use crate::error::DbError;
use crate::value::ValueType;
use serde::{Deserialize, Serialize};

/// Declaration of a foreign key: this column references
/// `parent_table.parent_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referenced (parent) table name.
    pub parent_table: String,
    /// Referenced column in the parent table (must be PRIMARY KEY or UNIQUE).
    pub parent_column: String,
}

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    name: String,
    ty: ValueType,
    not_null: bool,
    unique: bool,
    primary_key: bool,
    foreign_key: Option<ForeignKey>,
}

impl Column {
    /// Creates a plain nullable column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Column {
        Column {
            name: name.into(),
            ty,
            not_null: false,
            unique: false,
            primary_key: false,
            foreign_key: None,
        }
    }

    /// Declares the column NOT NULL.
    pub fn not_null(mut self) -> Column {
        self.not_null = true;
        self
    }

    /// Declares the column UNIQUE.
    pub fn unique(mut self) -> Column {
        self.unique = true;
        self
    }

    /// Declares the column the PRIMARY KEY (implies NOT NULL and UNIQUE).
    pub fn primary_key(mut self) -> Column {
        self.primary_key = true;
        self.not_null = true;
        self.unique = true;
        self
    }

    /// Declares a foreign key to `parent_table.parent_column`.
    pub fn references(
        mut self,
        parent_table: impl Into<String>,
        parent_column: impl Into<String>,
    ) -> Column {
        self.foreign_key = Some(ForeignKey {
            parent_table: parent_table.into(),
            parent_column: parent_column.into(),
        });
        self
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Declared type.
    pub fn ty(&self) -> ValueType {
        self.ty
    }
    /// Whether NULL is rejected.
    pub fn is_not_null(&self) -> bool {
        self.not_null
    }
    /// Whether duplicate values are rejected.
    pub fn is_unique(&self) -> bool {
        self.unique
    }
    /// Whether this is the primary key column.
    pub fn is_primary_key(&self) -> bool {
        self.primary_key
    }
    /// The foreign-key declaration, if any.
    pub fn foreign_key(&self) -> Option<&ForeignKey> {
        self.foreign_key.as_ref()
    }
}

/// A declared secondary index: an ordered list of columns queries can
/// be answered through without a full scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexSpec {
    /// Index name (unique within the table).
    pub name: String,
    /// Indexed columns, most significant first.
    pub columns: Vec<String>,
}

/// A table schema: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    name: String,
    columns: Vec<Column>,
    /// Declared secondary indexes. Defaults to empty so snapshots
    /// written before indexes existed still deserialize.
    #[serde(default)]
    indexes: Vec<IndexSpec>,
}

impl TableSchema {
    /// Creates a schema; validates that column names are unique (case
    /// sensitive, as in the paper's camelCase attribute names) and that at
    /// most one column is PRIMARY KEY.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Parse`] for duplicate column names, an empty
    /// column list, or multiple primary keys.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<TableSchema, DbError> {
        let name = name.into();
        if columns.is_empty() {
            return Err(DbError::Parse(format!(
                "table `{name}` must have at least one column"
            )));
        }
        let mut seen = std::collections::HashSet::new();
        let mut pk_count = 0usize;
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(DbError::Parse(format!(
                    "duplicate column `{}` in table `{name}`",
                    c.name
                )));
            }
            if c.primary_key {
                pk_count += 1;
            }
        }
        if pk_count > 1 {
            return Err(DbError::Parse(format!(
                "table `{name}` declares more than one PRIMARY KEY column"
            )));
        }
        Ok(TableSchema {
            name,
            columns,
            indexes: Vec::new(),
        })
    }

    /// Declares a secondary index over `columns` (most significant
    /// first). Builder style, used at schema-definition time.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Parse`] if the name duplicates an existing
    /// index, the column list is empty, or a column does not exist.
    pub fn with_index(
        mut self,
        name: impl Into<String>,
        columns: &[&str],
    ) -> Result<TableSchema, DbError> {
        let name = name.into();
        if columns.is_empty() {
            return Err(DbError::Parse(format!(
                "index `{name}` on table `{}` has no columns",
                self.name
            )));
        }
        if self.indexes.iter().any(|ix| ix.name == name) {
            return Err(DbError::Parse(format!(
                "duplicate index `{name}` on table `{}`",
                self.name
            )));
        }
        for col in columns {
            if self.column_index(col).is_none() {
                return Err(DbError::Parse(format!(
                    "index `{name}` names unknown column `{col}` of table `{}`",
                    self.name
                )));
            }
        }
        self.indexes.push(IndexSpec {
            name,
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
        });
        Ok(self)
    }

    /// Declared secondary indexes.
    pub fn indexes(&self) -> &[IndexSpec] {
        &self.indexes
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of the primary key column, if declared.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }

    /// All foreign keys as `(child column index, fk)` pairs.
    pub fn foreign_keys(&self) -> impl Iterator<Item = (usize, &ForeignKey)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.foreign_key().map(|fk| (i, fk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> TableSchema {
        TableSchema::new(
            "CampaignData",
            vec![
                Column::new("campaignName", ValueType::Text).primary_key(),
                Column::new("testCardName", ValueType::Text)
                    .not_null()
                    .references("TargetSystemData", "testCardName"),
                Column::new("nrOfExperiments", ValueType::Integer),
            ],
        )
        .unwrap()
    }

    #[test]
    fn primary_key_implies_not_null_unique() {
        let s = demo_schema();
        let pk = s.column("campaignName").unwrap();
        assert!(pk.is_primary_key() && pk.is_not_null() && pk.is_unique());
        assert_eq!(s.primary_key_index(), Some(0));
    }

    #[test]
    fn column_lookup() {
        let s = demo_schema();
        assert_eq!(s.column_index("nrOfExperiments"), Some(2));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn foreign_keys_enumerated() {
        let s = demo_schema();
        let fks: Vec<_> = s.foreign_keys().collect();
        assert_eq!(fks.len(), 1);
        assert_eq!(fks[0].0, 1);
        assert_eq!(fks[0].1.parent_table, "TargetSystemData");
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                Column::new("a", ValueType::Integer),
                Column::new("a", ValueType::Text),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Parse(_)));
    }

    #[test]
    fn empty_table_rejected() {
        assert!(TableSchema::new("t", vec![]).is_err());
    }

    #[test]
    fn multiple_primary_keys_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                Column::new("a", ValueType::Integer).primary_key(),
                Column::new("b", ValueType::Integer).primary_key(),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Parse(_)));
    }
}
