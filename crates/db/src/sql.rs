//! SQL text interface: a lexer and recursive-descent parser for the subset
//! the GOOFI workflows need, lowering onto the programmatic statement types.
//!
//! Supported statements:
//!
//! ```sql
//! CREATE TABLE t (col TYPE [PRIMARY KEY] [NOT NULL] [UNIQUE]
//!                 [REFERENCES parent(col)], ...);
//! DROP TABLE t;
//! INSERT INTO t [(c1, c2)] VALUES (v1, v2) [, (v3, v4)];
//! SELECT cols FROM t [JOIN u ON expr] [WHERE expr]
//!        [GROUP BY expr,...] [ORDER BY expr [ASC|DESC],...]
//!        [LIMIT n [OFFSET m]];
//! UPDATE t SET c = expr [, ...] [WHERE expr];
//! DELETE FROM t [WHERE expr];
//! ```

use crate::database::Database;
use crate::error::DbError;
use crate::expr::{BinOp, Expr};
use crate::query::{
    AggFunc, Delete, Insert, Join, ResultSet, Select, SelectItem, SortOrder, Update,
};
use crate::schema::{Column, TableSchema};
use crate::value::{Value, ValueType};

/// Result of executing one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlOutput {
    /// Rows from a SELECT.
    Rows(ResultSet),
    /// Row count affected by INSERT / UPDATE / DELETE.
    Affected(usize),
    /// DDL statements (CREATE / DROP TABLE).
    None,
}

impl Database {
    /// Parses and executes one SQL statement.
    ///
    /// # Errors
    ///
    /// [`DbError::Parse`] for malformed SQL, plus all execution errors of
    /// the underlying statement.
    ///
    /// # Examples
    ///
    /// ```
    /// use goofi_db::{Database, SqlOutput};
    /// # fn main() -> Result<(), goofi_db::DbError> {
    /// let mut db = Database::new();
    /// db.execute_sql("CREATE TABLE t (id TEXT PRIMARY KEY, n INTEGER)")?;
    /// db.execute_sql("INSERT INTO t VALUES ('a', 1)")?;
    /// let out = db.execute_sql("SELECT COUNT(*) AS n FROM t")?;
    /// if let SqlOutput::Rows(rs) = out {
    ///     assert_eq!(rs.scalar().unwrap().as_integer(), Some(1));
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn execute_sql(&mut self, sql: &str) -> Result<SqlOutput, DbError> {
        let tokens = lex(sql)?;
        let mut p = Parser::new(tokens);
        let stmt = p.statement()?;
        p.expect_end()?;
        match stmt {
            Statement::CreateTable(schema) => {
                self.create_table(schema)?;
                Ok(SqlOutput::None)
            }
            Statement::DropTable(name) => {
                self.drop_table(&name)?;
                Ok(SqlOutput::None)
            }
            Statement::Insert(i) => Ok(SqlOutput::Affected(self.insert(i)?)),
            Statement::Update(u) => Ok(SqlOutput::Affected(self.update(u)?)),
            Statement::Delete(d) => Ok(SqlOutput::Affected(self.delete(d)?)),
            Statement::Select(s) => Ok(SqlOutput::Rows(self.select(s)?)),
        }
    }

    /// Executes a script of `;`-separated statements inside a transaction:
    /// either every statement applies or none does. Returns one output per
    /// statement.
    ///
    /// # Errors
    ///
    /// The first statement error aborts and rolls back the whole script.
    pub fn execute_script(&mut self, script: &str) -> Result<Vec<SqlOutput>, DbError> {
        let statements = split_statements(script);
        self.begin_transaction();
        let mut outputs = Vec::with_capacity(statements.len());
        for stmt in statements {
            match self.execute_sql(&stmt) {
                Ok(out) => outputs.push(out),
                Err(e) => {
                    self.rollback().expect("transaction opened above");
                    return Err(e);
                }
            }
        }
        self.commit().expect("transaction opened above");
        Ok(outputs)
    }

    /// Convenience: executes SQL that must produce rows.
    ///
    /// # Errors
    ///
    /// As [`Database::execute_sql`]; additionally [`DbError::Parse`] if the
    /// statement was not a SELECT.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        match self.execute_sql(sql)? {
            SqlOutput::Rows(rs) => Ok(rs),
            _ => Err(DbError::Parse("statement did not produce rows".into())),
        }
    }
}

/// Splits a script on `;` while respecting string literals and comments.
fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut chars = script.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                current.push(c);
                // Copy until the closing quote (handling '' escapes).
                while let Some(&n) = chars.peek() {
                    current.push(n);
                    chars.next();
                    if n == '\'' {
                        if chars.peek() == Some(&'\'') {
                            current.push('\'');
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
            }
            '-' if chars.peek() == Some(&'-') => {
                // Skip line comment.
                for n in chars.by_ref() {
                    if n == '\n' {
                        break;
                    }
                }
                current.push(' ');
            }
            ';' => {
                if !current.trim().is_empty() {
                    out.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Keyword(String), // uppercased identifier that matched a keyword
    Int(i64),
    Real(f64),
    Str(String),
    Blob(Vec<u8>),
    Symbol(char),
    // two-char operators
    Le,
    Ge,
    Ne,
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "DROP",
    "PRIMARY",
    "KEY",
    "NOT",
    "NULL",
    "UNIQUE",
    "REFERENCES",
    "AND",
    "OR",
    "IN",
    "IS",
    "LIKE",
    "JOIN",
    "INNER",
    "ON",
    "AS",
    "GROUP",
    "BY",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "TRUE",
    "FALSE",
    "DISTINCT",
];

fn lex(sql: &str) -> Result<Vec<Token>, DbError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                // string literal with '' escaping
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(DbError::Parse("unterminated string".into())),
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            'x' | 'X' if chars.get(i + 1) == Some(&'\'') => {
                // blob literal x'ab01'
                i += 2;
                let mut hexstr = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(DbError::Parse("unterminated blob".into())),
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            hexstr.push(ch);
                            i += 1;
                        }
                    }
                }
                if !hexstr.len().is_multiple_of(2) {
                    return Err(DbError::Parse("blob literal has odd length".into()));
                }
                let mut bytes = Vec::with_capacity(hexstr.len() / 2);
                for pair in hexstr.as_bytes().chunks(2) {
                    let s = std::str::from_utf8(pair).expect("ascii hex");
                    bytes.push(
                        u8::from_str_radix(s, 16)
                            .map_err(|_| DbError::Parse(format!("bad hex `{s}` in blob")))?,
                    );
                }
                tokens.push(Token::Blob(bytes));
            }
            c if c.is_ascii_digit()
                || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                let mut is_real = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && matches!(chars.get(i - 1), Some('e') | Some('E'))))
                {
                    if chars[i] == '.' || chars[i] == 'e' || chars[i] == 'E' {
                        is_real = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_real {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| DbError::Parse(format!("bad number `{text}`")))?;
                    tokens.push(Token::Real(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| DbError::Parse(format!("bad number `{text}`")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // quoted identifier
                    let mut s = String::new();
                    i += 1;
                    loop {
                        match chars.get(i) {
                            None => return Err(DbError::Parse("unterminated identifier".into())),
                            Some('"') => {
                                i += 1;
                                break;
                            }
                            Some(&ch) => {
                                s.push(ch);
                                i += 1;
                            }
                        }
                    }
                    tokens.push(Token::Ident(s));
                } else {
                    let start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let word: String = chars[start..i].iter().collect();
                    let upper = word.to_ascii_uppercase();
                    if KEYWORDS.contains(&upper.as_str()) {
                        tokens.push(Token::Keyword(upper));
                    } else {
                        tokens.push(Token::Ident(word));
                    }
                }
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::Le);
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::Ge);
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '(' | ')' | ',' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | '%' | '.' | ';' => {
                tokens.push(Token::Symbol(c));
                i += 1;
            }
            other => return Err(DbError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

#[derive(Debug)]
enum Statement {
    CreateTable(TableSchema),
    DropTable(String),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    Select(Select),
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: char) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: char) -> Result<(), DbError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected `{sym}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn identifier(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            // Allow non-reserved use of aggregate names as identifiers is
            // not needed; keywords are reserved.
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_end(&mut self) -> Result<(), DbError> {
        // trailing semicolon is optional
        self.eat_symbol(';');
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "unexpected trailing tokens at {:?}",
                self.peek()
            )))
        }
    }

    fn statement(&mut self) -> Result<Statement, DbError> {
        match self.peek() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "CREATE" => self.create_table(),
                "DROP" => self.drop_table(),
                "INSERT" => self.insert(),
                "UPDATE" => self.update(),
                "DELETE" => self.delete(),
                "SELECT" => Ok(Statement::Select(self.select()?)),
                other => Err(DbError::Parse(format!("unexpected keyword `{other}`"))),
            },
            other => Err(DbError::Parse(format!(
                "expected statement, found {other:?}"
            ))),
        }
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.identifier()?;
        self.expect_symbol('(')?;
        let mut columns = Vec::new();
        loop {
            let cname = self.identifier()?;
            let tname = match self.next() {
                Some(Token::Ident(s)) => s,
                Some(Token::Keyword(s)) => s,
                other => {
                    return Err(DbError::Parse(format!(
                        "expected type name, found {other:?}"
                    )))
                }
            };
            let ty = ValueType::parse(&tname)
                .ok_or_else(|| DbError::Parse(format!("unknown type `{tname}`")))?;
            let mut col = Column::new(cname, ty);
            loop {
                if self.eat_keyword("PRIMARY") {
                    self.expect_keyword("KEY")?;
                    col = col.primary_key();
                } else if self.eat_keyword("NOT") {
                    self.expect_keyword("NULL")?;
                    col = col.not_null();
                } else if self.eat_keyword("UNIQUE") {
                    col = col.unique();
                } else if self.eat_keyword("REFERENCES") {
                    let parent = self.identifier()?;
                    self.expect_symbol('(')?;
                    let pcol = self.identifier()?;
                    self.expect_symbol(')')?;
                    col = col.references(parent, pcol);
                } else {
                    break;
                }
            }
            columns.push(col);
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_symbol(')')?;
        Ok(Statement::CreateTable(TableSchema::new(name, columns)?))
    }

    fn drop_table(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        Ok(Statement::DropTable(self.identifier()?))
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.identifier()?;
        let columns = if self.eat_symbol('(') {
            let mut cols = Vec::new();
            loop {
                cols.push(self.identifier()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol('(')?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal_value()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            rows.push(row);
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn literal_value(&mut self) -> Result<Value, DbError> {
        // Literals in VALUES; supports unary minus.
        match self.next() {
            Some(Token::Int(i)) => Ok(Value::Integer(i)),
            Some(Token::Real(r)) => Ok(Value::Real(r)),
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            Some(Token::Blob(b)) => Ok(Value::Blob(b)),
            Some(Token::Keyword(k)) => match k.as_str() {
                "NULL" => Ok(Value::Null),
                "TRUE" => Ok(Value::Boolean(true)),
                "FALSE" => Ok(Value::Boolean(false)),
                other => Err(DbError::Parse(format!("unexpected `{other}` in VALUES"))),
            },
            Some(Token::Symbol('-')) => match self.next() {
                Some(Token::Int(i)) => Ok(Value::Integer(-i)),
                Some(Token::Real(r)) => Ok(Value::Real(-r)),
                other => Err(DbError::Parse(format!("expected number, found {other:?}"))),
            },
            other => Err(DbError::Parse(format!("expected literal, found {other:?}"))),
        }
    }

    fn update(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("UPDATE")?;
        let table = self.identifier()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol('=')?;
            let expr = self.expr()?;
            assignments.push((col, expr));
            if !self.eat_symbol(',') {
                break;
            }
        }
        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            filter,
        }))
    }

    fn delete(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.identifier()?;
        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete { table, filter }))
    }

    fn select(&mut self) -> Result<Select, DbError> {
        self.expect_keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let table = self.identifier()?;
        let alias = self.maybe_alias()?;
        let mut select = Select {
            table,
            alias,
            joins: Vec::new(),
            items,
            filter: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: 0,
        };
        loop {
            if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
            } else if !self.eat_keyword("JOIN") {
                break;
            }
            let jtable = self.identifier()?;
            let jalias = self.maybe_alias()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            select.joins.push(Join {
                table: jtable,
                alias: jalias,
                on,
            });
        }
        if self.eat_keyword("WHERE") {
            select.filter = Some(self.expr()?);
        }
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                select.group_by.push(self.expr()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
        }
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let order = if self.eat_keyword("DESC") {
                    SortOrder::Desc
                } else {
                    self.eat_keyword("ASC");
                    SortOrder::Asc
                };
                select.order_by.push((expr, order));
                if !self.eat_symbol(',') {
                    break;
                }
            }
        }
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => select.limit = Some(n as usize),
                other => {
                    return Err(DbError::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
            if self.eat_keyword("OFFSET") {
                match self.next() {
                    Some(Token::Int(n)) if n >= 0 => select.offset = n as usize,
                    other => {
                        return Err(DbError::Parse(format!(
                            "expected OFFSET count, found {other:?}"
                        )))
                    }
                }
            }
        }
        Ok(select)
    }

    fn maybe_alias(&mut self) -> Result<Option<String>, DbError> {
        if self.eat_keyword("AS") {
            return Ok(Some(self.identifier()?));
        }
        if matches!(self.peek(), Some(Token::Ident(_))) {
            return Ok(Some(self.identifier()?));
        }
        Ok(None)
    }

    fn select_item(&mut self) -> Result<SelectItem, DbError> {
        if self.eat_symbol('*') {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        if let Some(Token::Keyword(k)) = self.peek() {
            let func = match k.as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                self.pos += 1;
                self.expect_symbol('(')?;
                let arg = if self.eat_symbol('*') {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_symbol(')')?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.identifier()?)
                } else {
                    None
                };
                return Ok(SelectItem::Aggregate { func, arg, alias });
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // Expression grammar (precedence climbing):
    // or_expr := and_expr (OR and_expr)*
    // and_expr := not_expr (AND not_expr)*
    // not_expr := NOT not_expr | predicate
    // predicate := additive ((=|<>|<|<=|>|>=) additive
    //              | IS [NOT] NULL | [NOT] IN (...) | [NOT] LIKE additive)?
    // additive := multiplicative ((+|-) multiplicative)*
    // multiplicative := unary ((*|/|%) unary)*
    // unary := - unary | primary
    // primary := literal | column | ( expr )
    fn expr(&mut self) -> Result<Expr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, DbError> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr, DbError> {
        let lhs = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] IN / [NOT] LIKE
        let negated = if matches!(self.peek(), Some(Token::Keyword(k)) if k == "NOT") {
            // lookahead: NOT IN / NOT LIKE
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(Token::Keyword(k)) if k == "IN" || k == "LIKE") {
                true
            } else {
                self.pos = save;
                false
            }
        } else {
            false
        };
        if self.eat_keyword("IN") {
            self.expect_symbol('(')?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(DbError::Parse("dangling NOT".into()));
        }
        // comparison
        let op = match self.peek() {
            Some(Token::Symbol('=')) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Symbol('<')) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Symbol('>')) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol('+')) => BinOp::Add,
                Some(Token::Symbol('-')) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol('*')) => BinOp::Mul,
                Some(Token::Symbol('/')) => BinOp::Div,
                Some(Token::Symbol('%')) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, DbError> {
        if self.eat_symbol('-') {
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Literal(Value::Integer(i)) => Expr::Literal(Value::Integer(-i)),
                Expr::Literal(Value::Real(r)) => Expr::Literal(Value::Real(-r)),
                other => Expr::Binary {
                    op: BinOp::Sub,
                    lhs: Box::new(Expr::lit(0)),
                    rhs: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, DbError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::lit(i)),
            Some(Token::Real(r)) => Ok(Expr::lit(r)),
            Some(Token::Str(s)) => Ok(Expr::lit(s)),
            Some(Token::Blob(b)) => Ok(Expr::Literal(Value::Blob(b))),
            Some(Token::Keyword(k)) => match k.as_str() {
                "NULL" => Ok(Expr::Literal(Value::Null)),
                "TRUE" => Ok(Expr::lit(true)),
                "FALSE" => Ok(Expr::lit(false)),
                other => Err(DbError::Parse(format!(
                    "unexpected `{other}` in expression"
                ))),
            },
            Some(Token::Symbol('(')) => {
                let e = self.expr()?;
                self.expect_symbol(')')?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.eat_symbol('.') {
                    let col = self.identifier()?;
                    Ok(Expr::qcol(name, col))
                } else {
                    Ok(Expr::col(name))
                }
            }
            other => Err(DbError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE TargetSystemData (testCardName TEXT PRIMARY KEY, descr TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE CampaignData (
                campaignName TEXT PRIMARY KEY,
                testCardName TEXT NOT NULL REFERENCES TargetSystemData(testCardName),
                nrOfExperiments INTEGER)",
        )
        .unwrap();
        db.execute_sql(
            "CREATE TABLE LoggedSystemState (
                experimentName TEXT PRIMARY KEY,
                parentExperiment TEXT REFERENCES LoggedSystemState(experimentName),
                campaignName TEXT NOT NULL REFERENCES CampaignData(campaignName),
                experimentData TEXT,
                stateVector BLOB)",
        )
        .unwrap();
        db.execute_sql("INSERT INTO TargetSystemData VALUES ('thor', 'Thor RD card')")
            .unwrap();
        db.execute_sql("INSERT INTO CampaignData VALUES ('c1', 'thor', 50)")
            .unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = db();
        let rs = db
            .query("SELECT campaignName, nrOfExperiments FROM CampaignData")
            .unwrap();
        assert_eq!(rs.columns, vec!["campaignName", "nrOfExperiments"]);
        assert_eq!(rs.rows[0][1], Value::Integer(50));
    }

    #[test]
    fn where_and_like() {
        let mut db = db();
        for i in 0..5 {
            db.execute_sql(&format!(
                "INSERT INTO LoggedSystemState (experimentName, campaignName) \
                 VALUES ('E{i}', 'c1')"
            ))
            .unwrap();
        }
        let rs = db
            .query("SELECT experimentName FROM LoggedSystemState WHERE experimentName LIKE 'E%' AND experimentName <> 'E3' ORDER BY experimentName")
            .unwrap();
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.rows[3][0], Value::Text("E4".into()));
    }

    #[test]
    fn aggregates_with_group_by() {
        let mut db = db();
        db.execute_sql("INSERT INTO CampaignData VALUES ('c2', 'thor', 70)")
            .unwrap();
        let rs = db
            .query(
                "SELECT testCardName, COUNT(*) AS n, SUM(nrOfExperiments) AS total \
                 FROM CampaignData GROUP BY testCardName",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Integer(2));
        assert_eq!(rs.rows[0][2], Value::Integer(120));
    }

    #[test]
    fn join_with_qualified_columns() {
        let mut db = db();
        db.execute_sql(
            "INSERT INTO LoggedSystemState (experimentName, campaignName, experimentData) \
             VALUES ('E1', 'c1', 'loc=IR bit=3')",
        )
        .unwrap();
        let rs = db
            .query(
                "SELECT l.experimentName, c.nrOfExperiments \
                 FROM LoggedSystemState l \
                 JOIN CampaignData c ON l.campaignName = c.campaignName \
                 WHERE c.campaignName = 'c1'",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Integer(50));
    }

    #[test]
    fn update_and_delete() {
        let mut db = db();
        let out = db
            .execute_sql("UPDATE CampaignData SET nrOfExperiments = nrOfExperiments * 2")
            .unwrap();
        assert_eq!(out, SqlOutput::Affected(1));
        let rs = db
            .query("SELECT nrOfExperiments FROM CampaignData")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(100));
        let out = db
            .execute_sql("DELETE FROM CampaignData WHERE campaignName = 'c1'")
            .unwrap();
        assert_eq!(out, SqlOutput::Affected(1));
    }

    #[test]
    fn fk_violation_via_sql() {
        let mut db = db();
        let err = db
            .execute_sql("INSERT INTO CampaignData VALUES ('c9', 'ghost-card', 1)")
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn string_escaping_and_blob_literals() {
        let mut db = db();
        db.execute_sql(
            "INSERT INTO LoggedSystemState (experimentName, campaignName, experimentData, stateVector) \
             VALUES ('it''s E1', 'c1', NULL, x'cafe01')",
        )
        .unwrap();
        let rs = db
            .query("SELECT experimentName, stateVector FROM LoggedSystemState")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Text("it's E1".into()));
        assert_eq!(rs.rows[0][1], Value::Blob(vec![0xca, 0xfe, 0x01]));
    }

    #[test]
    fn parse_errors_reported() {
        let mut db = db();
        assert!(matches!(
            db.execute_sql("SELEKT * FROM x").unwrap_err(),
            DbError::Parse(_)
        ));
        assert!(matches!(
            db.execute_sql("SELECT * FROM").unwrap_err(),
            DbError::Parse(_)
        ));
        assert!(matches!(
            db.execute_sql("INSERT INTO CampaignData VALUES ('a', 'thor', 1) garbage")
                .unwrap_err(),
            DbError::Parse(_)
        ));
    }

    #[test]
    fn is_null_and_in_predicates() {
        let mut db = db();
        db.execute_sql(
            "INSERT INTO LoggedSystemState (experimentName, campaignName) VALUES ('E1', 'c1')",
        )
        .unwrap();
        let rs = db
            .query("SELECT experimentName FROM LoggedSystemState WHERE parentExperiment IS NULL")
            .unwrap();
        assert_eq!(rs.len(), 1);
        let rs = db
            .query(
                "SELECT experimentName FROM LoggedSystemState WHERE experimentName IN ('E1','E2')",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        let rs = db
            .query(
                "SELECT experimentName FROM LoggedSystemState WHERE experimentName NOT IN ('E1')",
            )
            .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn arithmetic_precedence() {
        let mut db = db();
        let rs = db
            .query("SELECT nrOfExperiments + 2 * 10 AS v FROM CampaignData")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(70));
        let rs = db
            .query("SELECT (nrOfExperiments + 2) * 10 AS v FROM CampaignData")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(520));
    }

    #[test]
    fn negative_numbers_and_unary_minus() {
        let mut db = db();
        db.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
        db.execute_sql("INSERT INTO t VALUES (-5)").unwrap();
        let rs = db.query("SELECT x FROM t WHERE x < -1").unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(-5));
        let rs = db.query("SELECT -x AS y FROM t").unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(5));
    }

    #[test]
    fn scripts_run_atomically() {
        let mut db = db();
        let outs = db
            .execute_script(
                "INSERT INTO CampaignData VALUES ('c2', 'thor', 10); -- second campaign\n\
                 UPDATE CampaignData SET nrOfExperiments = 99 WHERE campaignName = 'c2';\n\
                 SELECT COUNT(*) FROM CampaignData;",
            )
            .unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[1], SqlOutput::Affected(1));
        // A failing script rolls everything back.
        let err = db
            .execute_script(
                "INSERT INTO CampaignData VALUES ('c3', 'thor', 1);\n\
                 INSERT INTO CampaignData VALUES ('c3', 'thor', 2);",
            )
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        let rs = db
            .query("SELECT COUNT(*) FROM CampaignData WHERE campaignName = 'c3'")
            .unwrap();
        assert_eq!(rs.scalar().unwrap().as_integer(), Some(0));
    }

    #[test]
    fn script_splitting_respects_strings() {
        let mut db = db();
        // A semicolon inside a string literal must not split.
        let outs = db
            .execute_script(
                "INSERT INTO TargetSystemData VALUES ('x;y', 'a;b');\n\
                 SELECT descr FROM TargetSystemData WHERE testCardName = 'x;y'",
            )
            .unwrap();
        assert_eq!(outs.len(), 2);
        match &outs[1] {
            SqlOutput::Rows(rs) => assert_eq!(rs.rows[0][0], Value::Text("a;b".into())),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_semicolons_tolerated() {
        let mut db = db();
        let rs = db
            .query("SELECT COUNT(*) FROM CampaignData -- how many?\n;")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Integer(1)));
    }
}
