//! Binary write-ahead log: length-prefixed, CRC-checksummed records.
//!
//! Record framing: `u32` payload length, `u32` CRC-32 of the payload,
//! then the payload. The first payload byte is the record type:
//!
//! | type | record        | payload after the type byte                |
//! |------|---------------|--------------------------------------------|
//! | 1    | insert        | `u32` name len, table name, row bytes      |
//! | 2    | delete        | `u32` name len, table name, key bytes      |
//! | 3    | page image    | `u32` page id, `PAGE_SIZE` page bytes      |
//! | 4    | commit marker | (empty) — the preceding images are durable |
//!
//! Replay stops at the first incomplete, oversized or checksum-failing
//! record, which turns a torn tail (the process died mid-append) into
//! a clean prefix of the logical history.

use super::page::{crc32, PageId, PAGE_SIZE};
use crate::error::DbError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const TYPE_INSERT: u8 = 1;
const TYPE_DELETE: u8 = 2;
const TYPE_PAGE_IMAGE: u8 = 3;
const TYPE_COMMIT: u8 = 4;

/// Upper bound on a sane record payload; anything larger is treated
/// as a torn/corrupt tail during replay.
const MAX_PAYLOAD: usize = PAGE_SIZE + (1 << 24);

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A row appended to `table` (binary row codec bytes).
    Insert {
        /// Table the row belongs to.
        table: String,
        /// `codec::encode_row` bytes.
        row: Vec<u8>,
    },
    /// A delete by primary key from `table` (binary value codec bytes).
    Delete {
        /// Table the row was deleted from.
        table: String,
        /// `codec::encode_value` bytes of the primary key.
        key: Vec<u8>,
    },
    /// A full page image logged by the checkpoint protocol.
    PageImage {
        /// The page this image belongs to.
        page: PageId,
        /// Exactly `PAGE_SIZE` bytes.
        data: Vec<u8>,
    },
    /// Commit marker: the page images since the last marker form a
    /// complete, durable checkpoint image set.
    Commit,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert { table, row } => {
                out.push(TYPE_INSERT);
                out.extend_from_slice(&(table.len() as u32).to_le_bytes());
                out.extend_from_slice(table.as_bytes());
                out.extend_from_slice(row);
            }
            WalRecord::Delete { table, key } => {
                out.push(TYPE_DELETE);
                out.extend_from_slice(&(table.len() as u32).to_le_bytes());
                out.extend_from_slice(table.as_bytes());
                out.extend_from_slice(key);
            }
            WalRecord::PageImage { page, data } => {
                out.push(TYPE_PAGE_IMAGE);
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(data);
            }
            WalRecord::Commit => out.push(TYPE_COMMIT),
        }
        out
    }

    fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&ty, rest) = payload.split_first()?;
        match ty {
            TYPE_INSERT | TYPE_DELETE => {
                if rest.len() < 4 {
                    return None;
                }
                let nlen = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                if rest.len() < 4 + nlen {
                    return None;
                }
                let table = String::from_utf8(rest[4..4 + nlen].to_vec()).ok()?;
                let body = rest[4 + nlen..].to_vec();
                Some(if ty == TYPE_INSERT {
                    WalRecord::Insert { table, row: body }
                } else {
                    WalRecord::Delete { table, key: body }
                })
            }
            TYPE_PAGE_IMAGE => {
                if rest.len() != 4 + PAGE_SIZE {
                    return None;
                }
                let page = u32::from_le_bytes(rest[..4].try_into().ok()?);
                Some(WalRecord::PageImage {
                    page,
                    data: rest[4..].to_vec(),
                })
            }
            TYPE_COMMIT => {
                if rest.is_empty() {
                    Some(WalRecord::Commit)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// An open write-ahead log file.
///
/// Appends are buffered in userspace (`BufWriter`) and reach the OS at
/// [`Wal::flush`] points: a full buffer, a checkpoint's commit marker,
/// a truncate, or drop. A `kill -9` can therefore lose the buffered
/// tail — recovery sees the same clean *prefix* it would after a torn
/// write, which is the contract campaign resume is built on.
pub struct Wal {
    file: BufWriter<File>,
    path: PathBuf,
}

/// Userspace WAL buffer: appends turn into one `write` syscall per
/// this many bytes instead of one per record.
const WAL_BUF: usize = 64 * 1024;

impl Wal {
    /// Opens (creating if missing) the WAL at `path`, positioned for
    /// appends at the current end.
    pub fn open(path: &Path) -> Result<Wal, DbError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| DbError::Io(format!("open wal {}: {e}", path.display())))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| DbError::Io(format!("seek wal: {e}")))?;
        Ok(Wal {
            file: BufWriter::with_capacity(WAL_BUF, file),
            path: path.to_path_buf(),
        })
    }

    /// Path of the WAL file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (framed, checksummed) to the write buffer.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), DbError> {
        let payload = record.encode();
        let _s = tracing::span("wal.append");
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(&payload).to_le_bytes());
        self.file
            .write_all(&header)
            .and_then(|()| self.file.write_all(&payload))
            .map_err(|e| DbError::Io(format!("wal append: {e}")))
    }

    /// Pushes every buffered record to the OS — the durability point
    /// checkpoints rely on before touching the data file in place.
    pub fn flush(&mut self) -> Result<(), DbError> {
        let _s = tracing::span("wal.fsync");
        self.file
            .flush()
            .map_err(|e| DbError::Io(format!("wal flush: {e}")))
    }

    /// Empties the WAL — called once a checkpoint has made the data
    /// file current.
    pub fn truncate(&mut self) -> Result<(), DbError> {
        self.flush()?;
        let file = self.file.get_mut();
        file.set_len(0)
            .map_err(|e| DbError::Io(format!("wal truncate: {e}")))?;
        file.seek(SeekFrom::Start(0))
            .map_err(|e| DbError::Io(format!("wal seek: {e}")))?;
        Ok(())
    }

    /// Current size of the WAL in bytes, counting buffered appends.
    pub fn size(&self) -> Result<u64, DbError> {
        self.file
            .get_ref()
            .metadata()
            .map(|m| m.len() + self.file.buffer().len() as u64)
            .map_err(|e| DbError::Io(format!("stat wal: {e}")))
    }

    /// Reads every valid record from the WAL at `path`, stopping at the
    /// first torn or corrupt one. A missing file reads as empty.
    pub fn read_all(path: &Path) -> Result<Vec<WalRecord>, DbError> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| DbError::Io(format!("read wal: {e}")))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(DbError::Io(format!("open wal {}: {e}", path.display()))),
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 8 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len == 0 || len > MAX_PAYLOAD || bytes.len() - pos - 8 < len {
                break; // torn tail
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            match WalRecord::decode(payload) {
                Some(rec) => records.push(rec),
                None => break,
            }
            pos += 8 + len;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("goofi_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn records_roundtrip() {
        let path = tmp("roundtrip.wal");
        let recs = vec![
            WalRecord::Insert {
                table: "T".into(),
                row: vec![1, 2, 3],
            },
            WalRecord::Delete {
                table: "T".into(),
                key: vec![9],
            },
            WalRecord::PageImage {
                page: 7,
                data: vec![0xAB; PAGE_SIZE],
            },
            WalRecord::Commit,
        ];
        let mut wal = Wal::open(&path).unwrap();
        for r in &recs {
            wal.append(r).unwrap();
        }
        drop(wal);
        assert_eq!(Wal::read_all(&path).unwrap(), recs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_reads_as_prefix() {
        let path = tmp("torn.wal");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..5u8 {
            wal.append(&WalRecord::Insert {
                table: "T".into(),
                row: vec![i; 40],
            })
            .unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Truncate mid-record: only the complete prefix survives.
        std::fs::write(&path, &full[..full.len() - 17]).unwrap();
        let recs = Wal::read_all(&path).unwrap();
        assert_eq!(recs.len(), 4);
        // Corrupt a payload byte in the final record: same prefix.
        let mut corrupt = full.clone();
        let n = corrupt.len();
        corrupt[n - 3] ^= 0xFF;
        std::fs::write(&path, &corrupt).unwrap();
        assert_eq!(Wal::read_all(&path).unwrap().len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_wal_reads_empty() {
        assert!(
            Wal::read_all(Path::new("/tmp/goofi-definitely-missing.wal"))
                .unwrap()
                .is_empty()
        );
    }
}
