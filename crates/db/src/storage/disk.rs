//! The disk manager: page-granular access to a single data file.

use super::page::{PageId, PAGE_SIZE};
use crate::error::DbError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Owns the data file and reads/writes whole pages.
///
/// The logical page count can run ahead of the file length: pages
/// allocated since the last checkpoint exist only in the buffer pool
/// (the no-steal policy never writes them early), and reading past the
/// end of the file yields a zeroed page.
pub struct DiskManager {
    file: File,
    path: PathBuf,
    page_count: u32,
}

impl DiskManager {
    /// Creates (truncating) a new data file with `page_count` starting
    /// at 1 — page 0 is the header page.
    pub fn create(path: &Path) -> Result<DiskManager, DbError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| DbError::Io(format!("create {}: {e}", path.display())))?;
        Ok(DiskManager {
            file,
            path: path.to_path_buf(),
            page_count: 1,
        })
    }

    /// Opens an existing data file. The logical page count is restored
    /// from the header page by the engine after recovery; until then it
    /// is derived from the file length.
    pub fn open(path: &Path) -> Result<DiskManager, DbError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| DbError::Io(format!("open {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| DbError::Io(format!("stat {}: {e}", path.display())))?
            .len();
        let page_count = (len.div_ceil(PAGE_SIZE as u64)).max(1) as u32;
        Ok(DiskManager {
            file,
            path: path.to_path_buf(),
            page_count,
        })
    }

    /// Path of the data file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of logically allocated pages (including unflushed ones).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Restores the logical page count from a recovered header page.
    pub fn set_page_count(&mut self, n: u32) {
        self.page_count = n.max(1);
    }

    /// Allocates a fresh page id. The page exists only in the buffer
    /// pool until the next checkpoint writes it.
    pub fn allocate(&mut self) -> PageId {
        let id = self.page_count;
        self.page_count += 1;
        id
    }

    /// Reads page `id` into `buf`, zero-filling anything past the
    /// current end of the file.
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<(), DbError> {
        buf.fill(0);
        let off = id as u64 * PAGE_SIZE as u64;
        let len = self
            .file
            .metadata()
            .map_err(|e| DbError::Io(format!("stat {}: {e}", self.path.display())))?
            .len();
        if off >= len {
            return Ok(());
        }
        self.file
            .seek(SeekFrom::Start(off))
            .map_err(|e| DbError::Io(format!("seek page {id}: {e}")))?;
        let avail = ((len - off) as usize).min(PAGE_SIZE);
        self.file
            .read_exact(&mut buf[..avail])
            .map_err(|e| DbError::Io(format!("read page {id}: {e}")))?;
        Ok(())
    }

    /// Writes page `id`, extending the file as needed.
    pub fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<(), DbError> {
        let off = id as u64 * PAGE_SIZE as u64;
        self.file
            .seek(SeekFrom::Start(off))
            .map_err(|e| DbError::Io(format!("seek page {id}: {e}")))?;
        self.file
            .write_all(buf)
            .map_err(|e| DbError::Io(format!("write page {id}: {e}")))?;
        Ok(())
    }

    /// Flushes buffered writes to the OS.
    pub fn sync(&mut self) -> Result<(), DbError> {
        self.file
            .flush()
            .map_err(|e| DbError::Io(format!("sync {}: {e}", self.path.display())))
    }

    /// Current size of the data file in bytes.
    pub fn file_len(&self) -> Result<u64, DbError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| DbError::Io(format!("stat {}: {e}", self.path.display())))
    }
}
