//! Paged storage engine: disk manager, buffer pool, slotted-page row
//! heaps, a binary checksummed WAL, and B-tree indexes.
//!
//! The JSON snapshot model (`Database::save`) rewrites the whole
//! database on every durable save — O(total rows) per save — and the
//! JSON-lines journal re-serialises every appended row as text. This
//! module replaces both with a real storage engine:
//!
//! * [`DiskManager`] reads and writes fixed-size 4 KiB pages;
//! * [`BufferPool`] caches pages with a deterministic LRU and a
//!   *no-steal* policy (dirty pages are never evicted, so the file on
//!   disk always equals the last checkpoint between checkpoints);
//! * [`heap`] lays rows out in slotted pages chained per table, with
//!   overflow chains for rows larger than a page;
//! * [`Wal`] is a binary, length-prefixed, CRC-checksummed
//!   write-ahead log — one record per append — replayed on open and
//!   truncated by [`PagedEngine::checkpoint`];
//! * [`BTree`] is the in-memory ordered index used for primary-key
//!   lookups inside the engine and for the declared secondary indexes
//!   on [`crate::Table`].
//!
//! See `DESIGN.md` §storage for the page format, the WAL record
//! layout, the checkpoint protocol and the recovery invariants.

mod btree;
mod buffer;
mod codec;
mod disk;
mod engine;
mod heap;
mod page;
mod wal;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use disk::DiskManager;
pub use engine::{is_paged_file, wal_path, write_database, EngineStats, PagedEngine, TableStats};
pub use page::{crc32, PageId, PAGE_SIZE};
pub use wal::{Wal, WalRecord};
