//! Slotted-page row heaps: each table stores its rows in a chain of
//! pages, with an overflow chain for rows larger than a page.
//!
//! Heap page layout (offsets in bytes):
//!
//! ```text
//! 0..4   next page id (u32 LE, 0 = end of chain)
//! 4..6   slot count   (u16 LE)
//! 6..8   cell start   (u16 LE, cells grow down from PAGE_SIZE)
//! 8..    slot array: per slot { cell offset u16, cell len u16 }
//! ```
//!
//! A slot with offset 0 is a tombstone (deleted row); its cell bytes
//! are reclaimed only by `compact` (a bulk rewrite). Cells start with
//! a tag byte: `0` = inline row bytes follow, `1` = the row lives in
//! an overflow chain (`u32` first page + `u32` total length follow).
//!
//! Overflow page layout: `0..4` next page id, `4..8` used bytes,
//! `8..` data.

use super::buffer::BufferPool;
use super::disk::DiskManager;
use super::page::{get_u16, get_u32, put_u16, put_u32, PageId, PAGE_SIZE};
use crate::error::DbError;

/// Locates one row: (heap page id, slot index).
pub(crate) type RowId = (PageId, u16);

const HDR: usize = 8;
const SLOT: usize = 4;
const TAG_INLINE: u8 = 0;
const TAG_OVERFLOW: u8 = 1;
/// Largest row that still fits inline in an otherwise-empty page.
const INLINE_MAX: usize = PAGE_SIZE - HDR - SLOT - 1;
const OVERFLOW_CAP: usize = PAGE_SIZE - 8;

/// Formats `page` as an empty heap page.
pub(crate) fn init_page(page: &mut [u8; PAGE_SIZE]) {
    page.fill(0);
    put_u16(page, 6, PAGE_SIZE as u16);
}

fn next_of(page: &[u8; PAGE_SIZE]) -> PageId {
    get_u32(page, 0)
}

fn slot_count(page: &[u8; PAGE_SIZE]) -> u16 {
    get_u16(page, 4)
}

/// Tries to place `cell` in `page`; returns the slot index on success.
fn try_insert(page: &mut [u8; PAGE_SIZE], cell: &[u8]) -> Option<u16> {
    let count = slot_count(page) as usize;
    let cell_start = get_u16(page, 6) as usize;
    let slots_end = HDR + count * SLOT;
    if cell_start < slots_end + SLOT || cell_start - slots_end - SLOT < cell.len() {
        return None;
    }
    let off = cell_start - cell.len();
    page[off..off + cell.len()].copy_from_slice(cell);
    put_u16(page, HDR + count * SLOT, off as u16);
    put_u16(page, HDR + count * SLOT + 2, cell.len() as u16);
    put_u16(page, 4, (count + 1) as u16);
    put_u16(page, 6, off as u16);
    Some(count as u16)
}

fn write_overflow(
    pool: &mut BufferPool,
    disk: &mut DiskManager,
    data: &[u8],
) -> Result<PageId, DbError> {
    let mut first: PageId = 0;
    let mut prev: PageId = 0;
    for chunk in data.chunks(OVERFLOW_CAP) {
        let id = disk.allocate();
        let page = pool.page_mut(disk, id)?;
        page.fill(0);
        put_u32(page, 4, chunk.len() as u32);
        page[8..8 + chunk.len()].copy_from_slice(chunk);
        if first == 0 {
            first = id;
        } else {
            let prev_page = pool.page_mut(disk, prev)?;
            put_u32(prev_page, 0, id);
        }
        prev = id;
    }
    Ok(first)
}

fn read_overflow(
    pool: &mut BufferPool,
    disk: &mut DiskManager,
    first: PageId,
    total: usize,
) -> Result<Vec<u8>, DbError> {
    let mut out = Vec::with_capacity(total);
    let mut id = first;
    let limit = disk.page_count() as usize + 1;
    let mut hops = 0usize;
    while id != 0 && out.len() < total {
        hops += 1;
        if hops > limit {
            return Err(DbError::Io("overflow chain cycle".into()));
        }
        let page = pool.page(disk, id)?;
        let used = get_u32(page, 4) as usize;
        if used > OVERFLOW_CAP {
            return Err(DbError::Io("corrupt overflow page".into()));
        }
        out.extend_from_slice(&page[8..8 + used]);
        id = next_of(page);
    }
    if out.len() != total {
        return Err(DbError::Io("short overflow chain".into()));
    }
    Ok(out)
}

/// Appends `row_bytes` to the heap chain ending at `last_page`.
/// Returns the new row's id and the chain's (possibly new) last page.
pub(crate) fn append_row(
    pool: &mut BufferPool,
    disk: &mut DiskManager,
    last_page: PageId,
    row_bytes: &[u8],
) -> Result<(RowId, PageId), DbError> {
    let cell: Vec<u8> = if row_bytes.len() <= INLINE_MAX {
        let mut c = Vec::with_capacity(1 + row_bytes.len());
        c.push(TAG_INLINE);
        c.extend_from_slice(row_bytes);
        c
    } else {
        let first = write_overflow(pool, disk, row_bytes)?;
        let mut c = Vec::with_capacity(9);
        c.push(TAG_OVERFLOW);
        c.extend_from_slice(&first.to_le_bytes());
        c.extend_from_slice(&(row_bytes.len() as u32).to_le_bytes());
        c
    };
    let page = pool.page_mut(disk, last_page)?;
    if let Some(slot) = try_insert(page, &cell) {
        return Ok(((last_page, slot), last_page));
    }
    let new_page = disk.allocate();
    {
        let page = pool.page_mut(disk, last_page)?;
        put_u32(page, 0, new_page);
    }
    let page = pool.page_mut(disk, new_page)?;
    init_page(page);
    let slot = try_insert(page, &cell).ok_or_else(|| {
        DbError::Io(format!(
            "cell of {} bytes does not fit an empty page",
            cell.len()
        ))
    })?;
    Ok(((new_page, slot), new_page))
}

/// Reads the row bytes at `row`, or `None` if the slot is a tombstone.
pub(crate) fn read_row(
    pool: &mut BufferPool,
    disk: &mut DiskManager,
    row: RowId,
) -> Result<Option<Vec<u8>>, DbError> {
    let (pid, slot) = row;
    let cell: Vec<u8> = {
        let page = pool.page(disk, pid)?;
        if slot >= slot_count(page) {
            return Err(DbError::Io(format!("no slot {slot} in page {pid}")));
        }
        let off = get_u16(page, HDR + slot as usize * SLOT) as usize;
        let len = get_u16(page, HDR + slot as usize * SLOT + 2) as usize;
        if off == 0 {
            return Ok(None);
        }
        if off + len > PAGE_SIZE || len == 0 {
            return Err(DbError::Io(format!("corrupt slot {slot} in page {pid}")));
        }
        page[off..off + len].to_vec()
    };
    match cell[0] {
        TAG_INLINE => Ok(Some(cell[1..].to_vec())),
        TAG_OVERFLOW => {
            if cell.len() != 9 {
                return Err(DbError::Io("corrupt overflow cell".into()));
            }
            let first = u32::from_le_bytes(cell[1..5].try_into().expect("4 bytes"));
            let total = u32::from_le_bytes(cell[5..9].try_into().expect("4 bytes")) as usize;
            Ok(Some(read_overflow(pool, disk, first, total)?))
        }
        other => Err(DbError::Io(format!("unknown cell tag {other}"))),
    }
}

/// Tombstones the slot at `row`; returns whether it was live.
pub(crate) fn delete_row(
    pool: &mut BufferPool,
    disk: &mut DiskManager,
    row: RowId,
) -> Result<bool, DbError> {
    let (pid, slot) = row;
    let page = pool.page_mut(disk, pid)?;
    if slot >= slot_count(page) {
        return Err(DbError::Io(format!("no slot {slot} in page {pid}")));
    }
    let off = get_u16(page, HDR + slot as usize * SLOT);
    if off == 0 {
        return Ok(false);
    }
    put_u16(page, HDR + slot as usize * SLOT, 0);
    put_u16(page, HDR + slot as usize * SLOT + 2, 0);
    Ok(true)
}

/// The page ids of the heap chain starting at `first`, in chain order.
pub(crate) fn chain(
    pool: &mut BufferPool,
    disk: &mut DiskManager,
    first: PageId,
) -> Result<Vec<PageId>, DbError> {
    let mut ids = Vec::new();
    let mut id = first;
    let limit = disk.page_count() as usize + 1;
    while id != 0 {
        if ids.len() > limit {
            return Err(DbError::Io("heap chain cycle".into()));
        }
        ids.push(id);
        id = next_of(pool.page(disk, id)?);
    }
    Ok(ids)
}

/// Live and total slot counts of one heap page.
pub(crate) fn page_slots(
    pool: &mut BufferPool,
    disk: &mut DiskManager,
    pid: PageId,
) -> Result<(u16, u16), DbError> {
    let page = pool.page(disk, pid)?;
    let count = slot_count(page);
    let mut live = 0u16;
    for slot in 0..count {
        if get_u16(page, HDR + slot as usize * SLOT) != 0 {
            live += 1;
        }
    }
    Ok((live, count))
}
