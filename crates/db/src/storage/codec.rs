//! Binary row codec: compact tagged encoding of [`Value`]s and rows
//! for heap cells and WAL payloads.

use crate::error::DbError;
use crate::table::Row;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_INTEGER: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BLOB: u8 = 4;
const TAG_BOOL_FALSE: u8 = 5;
const TAG_BOOL_TRUE: u8 = 6;

/// Appends the binary encoding of `v` to `out`.
pub(crate) fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Integer(i) => {
            out.push(TAG_INTEGER);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(TAG_REAL);
            out.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            out.push(TAG_BLOB);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Boolean(false) => out.push(TAG_BOOL_FALSE),
        Value::Boolean(true) => out.push(TAG_BOOL_TRUE),
    }
}

fn corrupt(what: &str) -> DbError {
    DbError::Io(format!("corrupt value encoding: {what}"))
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], DbError> {
    if buf.len() - *pos < n {
        return Err(corrupt("truncated"));
    }
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

/// Decodes one value from `buf` at `pos`, advancing `pos`.
pub(crate) fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, DbError> {
    let tag = take(buf, pos, 1)?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INTEGER => {
            let b: [u8; 8] = take(buf, pos, 8)?.try_into().expect("8 bytes");
            Value::Integer(i64::from_le_bytes(b))
        }
        TAG_REAL => {
            let b: [u8; 8] = take(buf, pos, 8)?.try_into().expect("8 bytes");
            Value::Real(f64::from_bits(u64::from_le_bytes(b)))
        }
        TAG_TEXT => {
            let b: [u8; 4] = take(buf, pos, 4)?.try_into().expect("4 bytes");
            let len = u32::from_le_bytes(b) as usize;
            let bytes = take(buf, pos, len)?;
            Value::Text(String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("bad utf-8"))?)
        }
        TAG_BLOB => {
            let b: [u8; 4] = take(buf, pos, 4)?.try_into().expect("4 bytes");
            let len = u32::from_le_bytes(b) as usize;
            Value::Blob(take(buf, pos, len)?.to_vec())
        }
        TAG_BOOL_FALSE => Value::Boolean(false),
        TAG_BOOL_TRUE => Value::Boolean(true),
        other => return Err(corrupt(&format!("unknown tag {other}"))),
    })
}

/// Encodes a whole row: `u16` value count followed by the values.
pub(crate) fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + row.len() * 8);
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        encode_value(v, &mut out);
    }
    out
}

/// Decodes a row previously produced by [`encode_row`]; the entire
/// buffer must be consumed.
pub(crate) fn decode_row(buf: &[u8]) -> Result<Row, DbError> {
    let mut pos = 0usize;
    let b: [u8; 2] = take(buf, &mut pos, 2)?.try_into().expect("2 bytes");
    let count = u16::from_le_bytes(b) as usize;
    let mut row = Vec::with_capacity(count);
    for _ in 0..count {
        row.push(decode_value(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(corrupt("trailing bytes after row"));
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrips_every_value_kind() {
        let row: Row = vec![
            Value::Null,
            Value::Integer(-42),
            Value::Real(3.5),
            Value::Text("héllo".into()),
            Value::Blob(vec![0, 255, 7]),
            Value::Boolean(true),
            Value::Boolean(false),
        ];
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn truncated_row_is_an_error() {
        let bytes = encode_row(&vec![Value::Text("abcdef".into())]);
        assert!(decode_row(&bytes[..bytes.len() - 2]).is_err());
        assert!(decode_row(&[9]).is_err());
    }
}
