//! An in-memory B-tree map used for the engine's primary-key indexes
//! and the declared secondary indexes on [`crate::Table`].
//!
//! Classic CLRS shape: minimum degree `B`, preemptive root/child
//! splits on the way down, `binary_search` within nodes. Point
//! lookups and ordered prefix scans are O(log n) in the number of
//! keys; iteration is in key order. Key *removal* is intentionally
//! not implemented — both users model deletion by emptying/clearing
//! the value (and rebuild the tree on compaction), which keeps the
//! structure append-only and trivially correct.

use std::cmp::Ordering;

/// Minimum degree: nodes hold `B-1 ..= 2B-1` keys (root exempt).
const B: usize = 16;
const MAX_KEYS: usize = 2 * B - 1;

#[derive(Clone)]
struct Node<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
    children: Vec<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    fn empty() -> Node<K, V> {
        Node {
            keys: Vec::new(),
            vals: Vec::new(),
            children: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An ordered map backed by a B-tree.
#[derive(Clone)]
pub struct BTree<K, V> {
    root: Box<Node<K, V>>,
    len: usize,
}

impl<K, V> std::fmt::Debug for BTree<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTree").field("len", &self.len).finish()
    }
}

impl<K: Ord, V> BTree<K, V> {
    /// An empty tree.
    pub fn new() -> BTree<K, V> {
        BTree {
            root: Box::new(Node::empty()),
            len: 0,
        }
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key` → `val`, returning the previous value if the key
    /// was already present.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        if self.root.keys.len() == MAX_KEYS {
            let old_root = std::mem::replace(&mut self.root, Box::new(Node::empty()));
            self.root.children.push(*old_root);
            Self::split_child(&mut self.root, 0);
        }
        let replaced = Self::insert_nonfull(&mut self.root, key, val);
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    fn split_child(parent: &mut Node<K, V>, i: usize) {
        let (mid_key, mid_val, right) = {
            let left = &mut parent.children[i];
            let right_keys = left.keys.split_off(B);
            let right_vals = left.vals.split_off(B);
            let right_children = if left.is_leaf() {
                Vec::new()
            } else {
                left.children.split_off(B)
            };
            let mid_key = left.keys.pop().expect("left half keeps B keys");
            let mid_val = left.vals.pop().expect("left half keeps B vals");
            (
                mid_key,
                mid_val,
                Node {
                    keys: right_keys,
                    vals: right_vals,
                    children: right_children,
                },
            )
        };
        parent.keys.insert(i, mid_key);
        parent.vals.insert(i, mid_val);
        parent.children.insert(i + 1, right);
    }

    fn insert_nonfull(node: &mut Node<K, V>, key: K, val: V) -> Option<V> {
        match node.keys.binary_search(&key) {
            Ok(i) => Some(std::mem::replace(&mut node.vals[i], val)),
            Err(mut i) => {
                if node.is_leaf() {
                    node.keys.insert(i, key);
                    node.vals.insert(i, val);
                    None
                } else {
                    if node.children[i].keys.len() == MAX_KEYS {
                        Self::split_child(node, i);
                        match key.cmp(&node.keys[i]) {
                            Ordering::Equal => {
                                return Some(std::mem::replace(&mut node.vals[i], val));
                            }
                            Ordering::Greater => i += 1,
                            Ordering::Less => {}
                        }
                    }
                    Self::insert_nonfull(&mut node.children[i], key, val)
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &*self.root;
        loop {
            match node.keys.binary_search(key) {
                Ok(i) => return Some(&node.vals[i]),
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    node = &node.children[i];
                }
            }
        }
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut node = &mut *self.root;
        loop {
            match node.keys.binary_search(key) {
                Ok(i) => return Some(&mut node.vals[i]),
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    node = &mut node.children[i];
                }
            }
        }
    }

    /// In-order visit of every entry.
    pub fn for_each<'a>(&'a self, f: &mut impl FnMut(&'a K, &'a V)) {
        fn walk<'a, K, V>(node: &'a Node<K, V>, f: &mut impl FnMut(&'a K, &'a V)) {
            for j in 0..node.keys.len() {
                if !node.is_leaf() {
                    walk(&node.children[j], f);
                }
                f(&node.keys[j], &node.vals[j]);
            }
            if !node.is_leaf() {
                walk(&node.children[node.keys.len()], f);
            }
        }
        walk(&self.root, f);
    }

    /// In-order visit starting at the first key `>= start`, continuing
    /// while `f` returns `true` — the ordered prefix/range scan the
    /// secondary indexes use.
    pub fn for_each_from<'a>(&'a self, start: &K, f: &mut impl FnMut(&'a K, &'a V) -> bool) {
        fn walk_all<'a, K, V>(
            node: &'a Node<K, V>,
            f: &mut impl FnMut(&'a K, &'a V) -> bool,
        ) -> bool {
            for j in 0..node.keys.len() {
                if !node.is_leaf() && !walk_all(&node.children[j], f) {
                    return false;
                }
                if !f(&node.keys[j], &node.vals[j]) {
                    return false;
                }
            }
            if !node.is_leaf() {
                return walk_all(&node.children[node.keys.len()], f);
            }
            true
        }
        fn walk_from<'a, K: Ord, V>(
            node: &'a Node<K, V>,
            start: &K,
            f: &mut impl FnMut(&'a K, &'a V) -> bool,
        ) -> bool {
            let (i, descend) = match node.keys.binary_search(start) {
                Ok(i) => (i, false),
                Err(i) => (i, true),
            };
            if descend && !node.is_leaf() && !walk_from(&node.children[i], start, f) {
                return false;
            }
            for j in i..node.keys.len() {
                if !f(&node.keys[j], &node.vals[j]) {
                    return false;
                }
                if !node.is_leaf() && !walk_all(&node.children[j + 1], f) {
                    return false;
                }
            }
            true
        }
        walk_from(&self.root, start, f);
    }
}

impl<K: Ord, V> Default for BTree<K, V> {
    fn default() -> Self {
        BTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_order_match_btreemap() {
        let mut tree = BTree::new();
        let mut reference = std::collections::BTreeMap::new();
        // Deterministic pseudo-random insertion order.
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 700) as i64;
            tree.insert(k, k * 10);
            reference.insert(k, k * 10);
        }
        assert_eq!(tree.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(tree.get(k), Some(v));
        }
        let mut got = Vec::new();
        tree.for_each(&mut |k, v| got.push((*k, *v)));
        let want: Vec<_> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut tree = BTree::new();
        assert_eq!(tree.insert("k", 1), None);
        assert_eq!(tree.insert("k", 2), Some(1));
        assert_eq!(tree.len(), 1);
        *tree.get_mut(&"k").unwrap() += 5;
        assert_eq!(tree.get(&"k"), Some(&7));
    }

    #[test]
    fn for_each_from_scans_suffix_in_order() {
        let mut tree = BTree::new();
        for k in (0..500).rev() {
            tree.insert(k, ());
        }
        let mut seen = Vec::new();
        tree.for_each_from(&123, &mut |k, _| {
            if *k >= 130 {
                return false;
            }
            seen.push(*k);
            true
        });
        assert_eq!(seen, (123..130).collect::<Vec<_>>());
        // Start key absent from the tree.
        let mut tree = BTree::new();
        for k in (0..500).filter(|k| k % 2 == 0) {
            tree.insert(k, ());
        }
        let mut seen = Vec::new();
        tree.for_each_from(&101, &mut |k, _| {
            seen.push(*k);
            seen.len() < 3
        });
        assert_eq!(seen, vec![102, 104, 106]);
    }
}
