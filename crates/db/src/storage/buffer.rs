//! The buffer pool: an in-memory page cache with deterministic LRU
//! eviction and a no-steal policy.

use super::disk::DiskManager;
use super::page::{PageId, PAGE_SIZE};
use crate::error::DbError;
use std::collections::BTreeMap;

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

/// Caches pages between the engine and the [`DiskManager`].
///
/// *No-steal*: a dirty page is never evicted and never written back
/// outside a checkpoint, so between checkpoints the data file always
/// holds exactly the last checkpoint's state — the recovery invariant
/// the WAL replay relies on. When every resident page is dirty the
/// pool grows past its nominal capacity instead of stealing.
///
/// Eviction is LRU over a monotonic access counter (no wall clock), so
/// identical operation histories touch the disk identically.
pub struct BufferPool {
    frames: BTreeMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
    dirty: usize,
}

/// Default number of resident pages (1 MiB of 4 KiB pages).
pub const DEFAULT_CAPACITY: usize = 256;

impl BufferPool {
    /// A pool with the default capacity.
    pub fn new() -> BufferPool {
        BufferPool::with_capacity(DEFAULT_CAPACITY)
    }

    /// A pool holding up to `capacity` clean pages.
    pub fn with_capacity(capacity: usize) -> BufferPool {
        BufferPool {
            frames: BTreeMap::new(),
            capacity: capacity.max(8),
            tick: 0,
            dirty: 0,
        }
    }

    fn ensure(&mut self, disk: &mut DiskManager, id: PageId) -> Result<(), DbError> {
        if self.frames.contains_key(&id) {
            return Ok(());
        }
        // Evict least-recently-used *clean* frames; dirty frames are
        // pinned (no-steal), so an all-dirty pool grows instead. The
        // dirty counter makes the all-dirty case O(1), and evicting in
        // a batch down to capacity amortises the scan after a
        // checkpoint cleans an over-grown pool.
        if self.frames.len() >= self.capacity && self.frames.len() > self.dirty {
            let mut clean: Vec<(u64, PageId)> = self
                .frames
                .iter()
                .filter(|(_, f)| !f.dirty)
                .map(|(pid, f)| (f.last_used, *pid))
                .collect();
            clean.sort_unstable();
            let excess = (self.frames.len() + 1).saturating_sub(self.capacity);
            for (_, pid) in clean.iter().take(excess) {
                self.frames.remove(pid);
            }
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        disk.read_page(id, &mut data)?;
        self.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                last_used: 0,
            },
        );
        Ok(())
    }

    /// Read access to page `id`, faulting it in if needed.
    pub fn page(
        &mut self,
        disk: &mut DiskManager,
        id: PageId,
    ) -> Result<&[u8; PAGE_SIZE], DbError> {
        self.ensure(disk, id)?;
        self.tick += 1;
        let frame = self.frames.get_mut(&id).expect("ensured above");
        frame.last_used = self.tick;
        Ok(&frame.data)
    }

    /// Write access to page `id`; the frame is marked dirty and pinned
    /// in memory until the next checkpoint.
    pub fn page_mut(
        &mut self,
        disk: &mut DiskManager,
        id: PageId,
    ) -> Result<&mut [u8; PAGE_SIZE], DbError> {
        self.ensure(disk, id)?;
        self.tick += 1;
        let frame = self.frames.get_mut(&id).expect("ensured above");
        frame.last_used = self.tick;
        if !frame.dirty {
            frame.dirty = true;
            self.dirty += 1;
        }
        Ok(&mut frame.data)
    }

    /// Installs `data` as the (dirty) contents of page `id` without
    /// reading the disk — used when WAL recovery replays page images.
    pub fn install(&mut self, id: PageId, data: &[u8]) {
        let mut boxed = Box::new([0u8; PAGE_SIZE]);
        let n = data.len().min(PAGE_SIZE);
        boxed[..n].copy_from_slice(&data[..n]);
        self.tick += 1;
        let old = self.frames.insert(
            id,
            Frame {
                data: boxed,
                dirty: true,
                last_used: self.tick,
            },
        );
        if !old.is_some_and(|f| f.dirty) {
            self.dirty += 1;
        }
    }

    /// Ids of all dirty pages, ascending.
    pub fn dirty_ids(&self) -> Vec<PageId> {
        self.frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Raw contents of a resident page (dirty or clean), if cached.
    pub fn resident(&self, id: PageId) -> Option<&[u8; PAGE_SIZE]> {
        self.frames.get(&id).map(|f| &*f.data)
    }

    /// Marks every frame clean — called after a checkpoint has written
    /// all dirty pages to disk.
    pub fn mark_all_clean(&mut self) {
        for frame in self.frames.values_mut() {
            frame.dirty = false;
        }
        self.dirty = 0;
    }

    /// Number of resident frames.
    pub fn resident_count(&self) -> usize {
        self.frames.len()
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}
