//! Page-level constants and helpers: size, identifiers, checksums and
//! little-endian field access.

/// Size of every page in the data file, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifies one page in the data file. Page 0 is the header page;
/// id 0 therefore doubles as the null link in page chains.
pub type PageId = u32;

/// Magic bytes at offset 0 of the header page.
pub const MAGIC: &[u8; 8] = b"GOOFIPG1";

/// On-disk format version written to the header page.
pub const FORMAT_VERSION: u32 = 1;

/// Reads a little-endian `u16` at `off`.
pub(crate) fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Writes a little-endian `u16` at `off`.
pub(crate) fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` at `off`.
pub(crate) fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Writes a little-endian `u32` at `off`.
pub(crate) fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
///
/// Every WAL record carries this checksum so recovery can tell a torn
/// or corrupted tail from a valid prefix.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn le_helpers_roundtrip() {
        let mut buf = [0u8; 16];
        put_u16(&mut buf, 3, 0xBEEF);
        put_u32(&mut buf, 8, 0xDEAD_BEEF);
        assert_eq!(get_u16(&buf, 3), 0xBEEF);
        assert_eq!(get_u32(&buf, 8), 0xDEAD_BEEF);
    }
}
