//! The paged storage engine: catalog, per-table row heaps, primary-key
//! B-tree indexes, WAL-backed appends and checkpoint/recovery.
//!
//! Checkpoint protocol (torn-page safe):
//!
//! 1. append a full image of every dirty page to the WAL,
//! 2. append a commit marker and flush the WAL,
//! 3. write the dirty pages in place (ascending page id) and flush,
//! 4. truncate the WAL.
//!
//! Between checkpoints the data file is never touched (the buffer
//! pool's no-steal policy), so recovery sees exactly one of two
//! states: *no commit marker in the WAL* — the data file is the last
//! checkpoint, replay the logical records (tolerating a torn tail);
//! *commit marker present* — a checkpoint died mid-write, reapply the
//! (idempotent) page images, then replay any logical records after
//! the marker.

use super::btree::BTree;
use super::buffer::BufferPool;
use super::codec::{decode_row, decode_value, encode_row, encode_value};
use super::disk::DiskManager;
use super::heap;
use super::page::{get_u32, put_u32, PageId, FORMAT_VERSION, MAGIC, PAGE_SIZE};
use super::wal::{Wal, WalRecord};
use crate::database::Database;
use crate::error::DbError;
use crate::schema::TableSchema;
use crate::table::{IndexKey, Row, Table};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::io::Read;
use std::path::{Path, PathBuf};

// Header page (page 0) field offsets.
const H_MAGIC: usize = 0;
const H_VERSION: usize = 8;
const H_PAGE_SIZE: usize = 12;
const H_PAGE_COUNT: usize = 16;
const H_CATALOG_ROOT: usize = 20;
const H_CATALOG_LEN: usize = 24;

const CHAIN_CAP: usize = PAGE_SIZE - 8;

/// Serialized catalog entry: one table's schema and heap chain.
#[derive(Serialize, Deserialize)]
struct CatalogEntry {
    name: String,
    schema: TableSchema,
    first_page: PageId,
    last_page: PageId,
}

struct EngineTable {
    name: String,
    schema: TableSchema,
    first_page: PageId,
    last_page: PageId,
    pk: Option<usize>,
    /// Primary key → row location. Deletions blank the value (the
    /// B-tree is append-only); the tree is rebuilt on every open.
    index: BTree<IndexKey, Option<heap::RowId>>,
    live_rows: u64,
    dead_slots: u64,
}

/// The WAL path that belongs to the data file at `db_path` — the data
/// file's name with `.wal` appended (mirrors [`crate::journal_path`]).
pub fn wal_path(db_path: impl AsRef<Path>) -> PathBuf {
    let p = db_path.as_ref();
    let mut name = p.file_name().unwrap_or_default().to_os_string();
    name.push(".wal");
    p.with_file_name(name)
}

/// Whether the file at `path` starts with the paged-engine magic.
/// Missing or short files answer `false` (legacy JSON path).
pub fn is_paged_file(path: impl AsRef<Path>) -> bool {
    let mut buf = [0u8; 8];
    match std::fs::File::open(path.as_ref()) {
        Ok(mut f) => f.read_exact(&mut buf).is_ok() && &buf == MAGIC,
        Err(_) => false,
    }
}

/// A database stored as fixed-size pages with WAL durability.
pub struct PagedEngine {
    disk: DiskManager,
    pool: BufferPool,
    wal: Wal,
    catalog_root: PageId,
    catalog_len: u32,
    tables: Vec<EngineTable>,
}

impl std::fmt::Debug for PagedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedEngine")
            .field("path", &self.path())
            .field("tables", &self.tables.len())
            .finish()
    }
}

/// Sizes and fragmentation counters for `goofi db stats`.
#[derive(Debug, Clone, Serialize)]
pub struct EngineStats {
    /// Bytes per page.
    pub page_size: usize,
    /// Logically allocated pages (including the header).
    pub page_count: u32,
    /// Data file size on disk in bytes.
    pub file_bytes: u64,
    /// WAL size on disk in bytes.
    pub wal_bytes: u64,
    /// Valid records currently in the WAL.
    pub wal_records: usize,
    /// Per-table heap/index statistics, in catalog order.
    pub tables: Vec<TableStats>,
}

/// Per-table statistics within [`EngineStats`].
#[derive(Debug, Clone, Serialize)]
pub struct TableStats {
    /// Table name.
    pub name: String,
    /// Pages in the table's heap chain (overflow pages excluded).
    pub heap_pages: usize,
    /// Live rows.
    pub live_rows: u64,
    /// Tombstoned slots awaiting `compact`.
    pub dead_slots: u64,
    /// Entries in the primary-key index (equals live rows when the
    /// table has a primary key).
    pub index_entries: u64,
}

impl PagedEngine {
    /// Creates a fresh, empty engine file at `path` (truncating), with
    /// its WAL beside it.
    pub fn create(path: &Path) -> Result<PagedEngine, DbError> {
        let mut disk = DiskManager::create(path)?;
        let mut pool = BufferPool::new();
        let hdr = pool.page_mut(&mut disk, 0)?;
        hdr.fill(0);
        hdr[H_MAGIC..H_MAGIC + 8].copy_from_slice(MAGIC);
        put_u32(hdr, H_VERSION, FORMAT_VERSION);
        put_u32(hdr, H_PAGE_SIZE, PAGE_SIZE as u32);
        put_u32(hdr, H_PAGE_COUNT, 1);
        let mut wal = Wal::open(&wal_path(path))?;
        wal.truncate()?;
        Ok(PagedEngine {
            disk,
            pool,
            wal,
            catalog_root: 0,
            catalog_len: 0,
            tables: Vec::new(),
        })
    }

    /// Opens the engine at `path`, running WAL recovery: reapply a
    /// committed checkpoint image set if one is present, then replay
    /// the logical record tail (tolerating a torn final record).
    /// Recovery mutates only the buffer pool — the data file is not
    /// written until the next checkpoint.
    pub fn open(path: &Path) -> Result<PagedEngine, DbError> {
        let mut disk = DiskManager::open(path)?;
        let mut pool = BufferPool::new();
        let records = Wal::read_all(&wal_path(path))?;
        let last_commit = records.iter().rposition(|r| matches!(r, WalRecord::Commit));
        if let Some(ci) = last_commit {
            for rec in &records[..ci] {
                if let WalRecord::PageImage { page, data } = rec {
                    pool.install(*page, data);
                }
            }
        }
        let (page_count, catalog_root, catalog_len) = {
            let hdr = pool.page(&mut disk, 0)?;
            if &hdr[H_MAGIC..H_MAGIC + 8] != MAGIC {
                return Err(DbError::Io(format!(
                    "{} is not a paged goofi database",
                    path.display()
                )));
            }
            if get_u32(hdr, H_VERSION) != FORMAT_VERSION {
                return Err(DbError::Io(format!(
                    "unsupported paged format version {}",
                    get_u32(hdr, H_VERSION)
                )));
            }
            if get_u32(hdr, H_PAGE_SIZE) as usize != PAGE_SIZE {
                return Err(DbError::Io(format!(
                    "unsupported page size {}",
                    get_u32(hdr, H_PAGE_SIZE)
                )));
            }
            (
                get_u32(hdr, H_PAGE_COUNT),
                get_u32(hdr, H_CATALOG_ROOT),
                get_u32(hdr, H_CATALOG_LEN),
            )
        };
        disk.set_page_count(page_count);
        let wal = Wal::open(&wal_path(path))?;
        let mut engine = PagedEngine {
            disk,
            pool,
            wal,
            catalog_root,
            catalog_len,
            tables: Vec::new(),
        };
        engine.load_catalog()?;
        engine.rebuild_indexes()?;
        let tail = match last_commit {
            Some(ci) => &records[ci + 1..],
            None => &records[..],
        };
        for rec in tail {
            match rec {
                WalRecord::Insert { table, row } => {
                    let row = decode_row(row)?;
                    engine.apply_insert(table, &row)?;
                }
                WalRecord::Delete { table, key } => {
                    let mut pos = 0usize;
                    let key = decode_value(key, &mut pos)?;
                    engine.apply_delete(table, &key)?;
                }
                WalRecord::PageImage { .. } | WalRecord::Commit => {
                    return Err(DbError::Io(
                        "unexpected page image after checkpoint commit".into(),
                    ));
                }
            }
        }
        Ok(engine)
    }

    fn load_catalog(&mut self) -> Result<(), DbError> {
        if self.catalog_root == 0 || self.catalog_len == 0 {
            return Ok(());
        }
        let bytes = self.read_chain(self.catalog_root, self.catalog_len as usize)?;
        let text = String::from_utf8(bytes)
            .map_err(|_| DbError::Io("catalog is not valid UTF-8".into()))?;
        let entries: Vec<CatalogEntry> =
            serde_json::from_str(&text).map_err(|e| DbError::Io(format!("bad catalog: {e}")))?;
        self.tables = entries
            .into_iter()
            .map(|e| {
                let pk = e.schema.primary_key_index();
                EngineTable {
                    name: e.name,
                    schema: e.schema,
                    first_page: e.first_page,
                    last_page: e.last_page,
                    pk,
                    index: BTree::new(),
                    live_rows: 0,
                    dead_slots: 0,
                }
            })
            .collect();
        Ok(())
    }

    /// Rebuilds every table's primary-key index and live/dead counters
    /// by scanning the heaps.
    fn rebuild_indexes(&mut self) -> Result<(), DbError> {
        for ti in 0..self.tables.len() {
            let first = self.tables[ti].first_page;
            let pk = self.tables[ti].pk;
            let mut index = BTree::new();
            let mut live = 0u64;
            let mut dead = 0u64;
            let chain = heap::chain(&mut self.pool, &mut self.disk, first)?;
            for pid in chain {
                let (_, total) = heap::page_slots(&mut self.pool, &mut self.disk, pid)?;
                for slot in 0..total {
                    match heap::read_row(&mut self.pool, &mut self.disk, (pid, slot))? {
                        Some(bytes) => {
                            live += 1;
                            if let Some(col) = pk {
                                let row = decode_row(&bytes)?;
                                index.insert(IndexKey(row[col].clone()), Some((pid, slot)));
                            }
                        }
                        None => dead += 1,
                    }
                }
            }
            let t = &mut self.tables[ti];
            t.index = index;
            t.live_rows = live;
            t.dead_slots = dead;
        }
        Ok(())
    }

    /// Path of the data file.
    pub fn path(&self) -> &Path {
        self.disk.path()
    }

    /// Table names in catalog (creation) order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|t| t.name.clone()).collect()
    }

    /// The schema of `table`, if it exists.
    pub fn schema_of(&self, table: &str) -> Option<&TableSchema> {
        self.tables
            .iter()
            .find(|t| t.name == table)
            .map(|t| &t.schema)
    }

    fn table_idx(&self, name: &str) -> Result<usize, DbError> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Adds a table to the catalog and allocates its first heap page.
    /// Durable only after the next checkpoint — callers create tables
    /// during bulk builds and checkpoint immediately after.
    pub fn create_table(&mut self, schema: &TableSchema) -> Result<(), DbError> {
        if self.tables.iter().any(|t| t.name == schema.name()) {
            return Err(DbError::TableExists(schema.name().to_owned()));
        }
        let first = self.disk.allocate();
        let page = self.pool.page_mut(&mut self.disk, first)?;
        heap::init_page(page);
        self.tables.push(EngineTable {
            name: schema.name().to_owned(),
            schema: schema.clone(),
            first_page: first,
            last_page: first,
            pk: schema.primary_key_index(),
            index: BTree::new(),
            live_rows: 0,
            dead_slots: 0,
        });
        Ok(())
    }

    fn check_pk_free(&self, ti: usize, row: &Row) -> Result<(), DbError> {
        let t = &self.tables[ti];
        if let Some(col) = t.pk {
            if col >= row.len() {
                return Err(DbError::ArityMismatch {
                    expected: t.schema.arity(),
                    got: row.len(),
                });
            }
            let key = IndexKey(row[col].clone());
            if t.index.get(&key).is_some_and(|v| v.is_some()) {
                return Err(DbError::UniqueViolation {
                    table: t.name.clone(),
                    column: t.schema.columns()[col].name().to_owned(),
                });
            }
        }
        Ok(())
    }

    fn apply_insert(&mut self, table: &str, row: &Row) -> Result<(), DbError> {
        let ti = self.table_idx(table)?;
        self.check_pk_free(ti, row)?;
        self.apply_insert_at(ti, row)
    }

    /// [`Self::apply_insert`] with the table index and uniqueness check
    /// already done by the caller.
    fn apply_insert_at(&mut self, ti: usize, row: &Row) -> Result<(), DbError> {
        let bytes = encode_row(row);
        let (rowid, new_last) = heap::append_row(
            &mut self.pool,
            &mut self.disk,
            self.tables[ti].last_page,
            &bytes,
        )?;
        let t = &mut self.tables[ti];
        t.last_page = new_last;
        t.live_rows += 1;
        if let Some(col) = t.pk {
            t.index.insert(IndexKey(row[col].clone()), Some(rowid));
        }
        Ok(())
    }

    fn apply_delete(&mut self, table: &str, key: &Value) -> Result<bool, DbError> {
        let ti = self.table_idx(table)?;
        let t = &self.tables[ti];
        let Some(_col) = t.pk else { return Ok(false) };
        let k = IndexKey(key.clone());
        let Some(Some(rowid)) = t.index.get(&k).cloned() else {
            return Ok(false);
        };
        heap::delete_row(&mut self.pool, &mut self.disk, rowid)?;
        let t = &mut self.tables[ti];
        t.index.insert(k, None);
        t.live_rows -= 1;
        t.dead_slots += 1;
        Ok(true)
    }

    /// Appends `row` to `table`: one WAL record, then the in-page
    /// write. O(row), not O(database) — this is the sustained-append
    /// path `goofi run` streams experiment rows through.
    pub fn append(&mut self, table: &str, row: &Row) -> Result<(), DbError> {
        let ti = self.table_idx(table)?;
        self.check_pk_free(ti, row)?;
        self.wal.append(&WalRecord::Insert {
            table: table.to_owned(),
            row: encode_row(row),
        })?;
        self.apply_insert_at(ti, row)
    }

    /// Deletes the row of `table` whose primary key equals `key`.
    /// Returns whether a row was deleted. No-op (and no WAL record)
    /// when the key is absent.
    pub fn delete_by_pk(&mut self, table: &str, key: &Value) -> Result<bool, DbError> {
        let ti = self.table_idx(table)?;
        let t = &self.tables[ti];
        let Some(_) = t.pk else { return Ok(false) };
        let k = IndexKey(key.clone());
        if !t.index.get(&k).is_some_and(|v| v.is_some()) {
            return Ok(false);
        }
        let mut kb = Vec::new();
        encode_value(key, &mut kb);
        self.wal.append(&WalRecord::Delete {
            table: table.to_owned(),
            key: kb,
        })?;
        self.apply_delete(table, key)
    }

    /// Inserts without writing a WAL record — bulk-build path where
    /// durability comes from the closing checkpoint + rename.
    fn insert_direct(&mut self, table: &str, row: &Row) -> Result<(), DbError> {
        self.apply_insert(table, row)
    }

    /// O(log n) point lookup through the primary-key index.
    pub fn pk_get(&mut self, table: &str, key: &Value) -> Result<Option<Row>, DbError> {
        let ti = self.table_idx(table)?;
        let k = IndexKey(key.clone());
        let Some(Some(rowid)) = self.tables[ti].index.get(&k).cloned() else {
            return Ok(None);
        };
        match heap::read_row(&mut self.pool, &mut self.disk, rowid)? {
            Some(bytes) => Ok(Some(decode_row(&bytes)?)),
            None => Ok(None),
        }
    }

    /// All live rows of `table` in heap (insertion) order.
    pub fn rows(&mut self, table: &str) -> Result<Vec<Row>, DbError> {
        let ti = self.table_idx(table)?;
        let first = self.tables[ti].first_page;
        let chain = heap::chain(&mut self.pool, &mut self.disk, first)?;
        let mut out = Vec::new();
        for pid in chain {
            let (_, total) = heap::page_slots(&mut self.pool, &mut self.disk, pid)?;
            for slot in 0..total {
                if let Some(bytes) = heap::read_row(&mut self.pool, &mut self.disk, (pid, slot))? {
                    out.push(decode_row(&bytes)?);
                }
            }
        }
        Ok(out)
    }

    /// Writes `data` into the catalog chain, reusing existing chain
    /// pages and allocating more as needed. Returns the chain root.
    fn write_chain(&mut self, existing: PageId, data: &[u8]) -> Result<PageId, DbError> {
        let mut reuse = existing;
        let mut first: PageId = 0;
        let mut prev: PageId = 0;
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[]]
        } else {
            data.chunks(CHAIN_CAP).collect()
        };
        for chunk in chunks {
            let (cur, next_reuse) = if reuse != 0 {
                let next = get_u32(self.pool.page(&mut self.disk, reuse)?, 0);
                (reuse, next)
            } else {
                (self.disk.allocate(), 0)
            };
            reuse = next_reuse;
            let page = self.pool.page_mut(&mut self.disk, cur)?;
            page.fill(0);
            put_u32(page, 4, chunk.len() as u32);
            page[8..8 + chunk.len()].copy_from_slice(chunk);
            if first == 0 {
                first = cur;
            } else {
                let prev_page = self.pool.page_mut(&mut self.disk, prev)?;
                put_u32(prev_page, 0, cur);
            }
            prev = cur;
        }
        Ok(first)
    }

    fn read_chain(&mut self, first: PageId, total: usize) -> Result<Vec<u8>, DbError> {
        let mut out = Vec::with_capacity(total);
        let mut id = first;
        let limit = self.disk.page_count() as usize + 1;
        let mut hops = 0usize;
        while id != 0 && out.len() < total {
            hops += 1;
            if hops > limit {
                return Err(DbError::Io("catalog chain cycle".into()));
            }
            let page = self.pool.page(&mut self.disk, id)?;
            let used = get_u32(page, 4) as usize;
            if used > CHAIN_CAP {
                return Err(DbError::Io("corrupt catalog page".into()));
            }
            out.extend_from_slice(&page[8..8 + used]);
            id = get_u32(page, 0);
        }
        if out.len() < total {
            return Err(DbError::Io("short catalog chain".into()));
        }
        out.truncate(total);
        Ok(out)
    }

    fn write_catalog_and_header(&mut self) -> Result<(), DbError> {
        let entries: Vec<CatalogEntry> = self
            .tables
            .iter()
            .map(|t| CatalogEntry {
                name: t.name.clone(),
                schema: t.schema.clone(),
                first_page: t.first_page,
                last_page: t.last_page,
            })
            .collect();
        let json =
            serde_json::to_string(&entries).map_err(|e| DbError::Io(format!("catalog: {e}")))?;
        self.catalog_root = self.write_chain(self.catalog_root, json.as_bytes())?;
        self.catalog_len = json.len() as u32;
        let page_count = self.disk.page_count();
        let catalog_root = self.catalog_root;
        let catalog_len = self.catalog_len;
        let hdr = self.pool.page_mut(&mut self.disk, 0)?;
        hdr.fill(0);
        hdr[H_MAGIC..H_MAGIC + 8].copy_from_slice(MAGIC);
        put_u32(hdr, H_VERSION, FORMAT_VERSION);
        put_u32(hdr, H_PAGE_SIZE, PAGE_SIZE as u32);
        put_u32(hdr, H_PAGE_COUNT, page_count);
        put_u32(hdr, H_CATALOG_ROOT, catalog_root);
        put_u32(hdr, H_CATALOG_LEN, catalog_len);
        Ok(())
    }

    fn flush_dirty(&mut self, log_images: bool) -> Result<(), DbError> {
        self.write_catalog_and_header()?;
        let dirty = self.pool.dirty_ids();
        if log_images {
            for id in &dirty {
                let data = self
                    .pool
                    .resident(*id)
                    .expect("dirty pages are resident")
                    .to_vec();
                self.wal.append(&WalRecord::PageImage { page: *id, data })?;
            }
            self.wal.append(&WalRecord::Commit)?;
        }
        // Durability point: every logged record (rows since the last
        // checkpoint, the page images, the commit marker) must reach
        // the OS before the in-place writes below can tear anything.
        self.wal.flush()?;
        for id in &dirty {
            let data = *self.pool.resident(*id).expect("dirty pages are resident");
            self.disk.write_page(*id, &data)?;
        }
        self.disk.sync()?;
        self.wal.truncate()?;
        self.pool.mark_all_clean();
        Ok(())
    }

    /// Checkpoints: makes the data file current and empties the WAL.
    /// This is what `save` amounts to on the paged engine — O(dirty
    /// pages), not O(total rows). No-op when nothing changed.
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        if self.pool.dirty_ids().is_empty() && self.wal.size()? == 0 {
            return Ok(());
        }
        let _s = tracing::span("checkpoint");
        self.flush_dirty(true)
    }

    /// Reconstructs an in-memory [`Database`] from the engine: tables
    /// in catalog order, rows in heap (insertion) order. Constraints are
    /// *not* re-validated — the rows passed every check when they were
    /// originally inserted, and skipping validation frees this path from
    /// any particular table or row ordering (catalog order is
    /// alphabetical, which need not topologically sort the FK graph).
    pub fn to_database(&mut self) -> Result<Database, DbError> {
        let mut db = Database::new();
        let names = self.table_names();
        for name in &names {
            let schema = self.schema_of(name).expect("catalog entry exists").clone();
            let mut table = Table::new(schema);
            for row in self.rows(name)? {
                table.push_unchecked(row);
            }
            table.rebuild_indexes();
            db.install_table(table);
        }
        Ok(db)
    }

    /// Size and fragmentation statistics for `goofi db stats`.
    pub fn stats(&mut self) -> Result<EngineStats, DbError> {
        // Buffered appends must hit the file for the record count below.
        self.wal.flush()?;
        let mut tables = Vec::new();
        for ti in 0..self.tables.len() {
            let first = self.tables[ti].first_page;
            let chain = heap::chain(&mut self.pool, &mut self.disk, first)?;
            let t = &self.tables[ti];
            tables.push(TableStats {
                name: t.name.clone(),
                heap_pages: chain.len(),
                live_rows: t.live_rows,
                dead_slots: t.dead_slots,
                index_entries: if t.pk.is_some() { t.live_rows } else { 0 },
            });
        }
        Ok(EngineStats {
            page_size: PAGE_SIZE,
            page_count: self.disk.page_count(),
            file_bytes: self.disk.file_len()?,
            wal_bytes: self.wal.size()?,
            wal_records: Wal::read_all(self.wal.path())?.len(),
            tables,
        })
    }
}

/// Atomically rewrites `path` as a fresh paged file holding exactly
/// `db`'s logical content (tables in name order, live rows in row-id
/// order): build into a `.tmp` sibling, checkpoint, rename over. Also
/// removes any stale WAL beside `path`, since the new file is fully
/// current. This is the compaction path — tombstoned slots and leaked
/// overflow pages do not survive it — and the byte-deterministic
/// `save` path for stores with no attached engine.
pub fn write_database(path: &Path, db: &Database) -> Result<(), DbError> {
    let tmp = {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        path.with_file_name(name)
    };
    let build = (|| -> Result<(), DbError> {
        let mut engine = PagedEngine::create(&tmp)?;
        for name in db.table_names() {
            let table = db.table(name)?;
            engine.create_table(table.schema())?;
        }
        for name in db.table_names() {
            let table = db.table(name)?;
            for (_, row) in table.iter() {
                engine.insert_direct(name, row)?;
            }
        }
        engine.flush_dirty(false)
    })();
    if let Err(e) = build {
        let _ = std::fs::remove_file(&tmp);
        let _ = std::fs::remove_file(wal_path(&tmp));
        return Err(e);
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        DbError::Io(format!(
            "rename {} over {}: {e}",
            tmp.display(),
            path.display()
        ))
    })?;
    let _ = std::fs::remove_file(wal_path(&tmp));
    let _ = std::fs::remove_file(wal_path(path));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Insert;
    use crate::schema::Column;
    use crate::value::ValueType;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join("goofi_engine_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fresh(name: &str) -> PathBuf {
        let p = tmpdir().join(name);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(wal_path(&p));
        p
    }

    fn demo_schema() -> TableSchema {
        TableSchema::new(
            "T",
            vec![
                Column::new("id", ValueType::Text).primary_key(),
                Column::new("n", ValueType::Integer),
                Column::new("blob", ValueType::Blob),
            ],
        )
        .unwrap()
    }

    fn row(i: usize, blob_len: usize) -> Row {
        vec![
            Value::Text(format!("row-{i:05}")),
            Value::Integer(i as i64),
            Value::Blob(vec![(i % 251) as u8; blob_len]),
        ]
    }

    #[test]
    fn append_checkpoint_reopen_roundtrips() {
        let path = fresh("roundtrip.gdb");
        let mut e = PagedEngine::create(&path).unwrap();
        e.create_table(&demo_schema()).unwrap();
        for i in 0..100 {
            e.append("T", &row(i, 16)).unwrap();
        }
        e.checkpoint().unwrap();
        drop(e);
        assert!(is_paged_file(&path));
        let mut e = PagedEngine::open(&path).unwrap();
        let rows = e.rows("T").unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[42], row(42, 16));
        assert_eq!(
            e.pk_get("T", &Value::Text("row-00007".into())).unwrap(),
            Some(row(7, 16))
        );
    }

    #[test]
    fn uncheckpointed_tail_recovers_from_wal() {
        let path = fresh("tail.gdb");
        let mut e = PagedEngine::create(&path).unwrap();
        e.create_table(&demo_schema()).unwrap();
        for i in 0..10 {
            e.append("T", &row(i, 8)).unwrap();
        }
        e.checkpoint().unwrap();
        for i in 10..25 {
            e.append("T", &row(i, 8)).unwrap();
        }
        drop(e); // crash: no checkpoint for the tail
        let mut e = PagedEngine::open(&path).unwrap();
        assert_eq!(e.rows("T").unwrap().len(), 25);
        // Recovery did not touch the data file; a second open replays
        // the same tail again.
        drop(e);
        let mut e = PagedEngine::open(&path).unwrap();
        assert_eq!(e.rows("T").unwrap().len(), 25);
        e.checkpoint().unwrap();
        assert_eq!(std::fs::metadata(wal_path(&path)).unwrap().len(), 0);
    }

    #[test]
    fn oversized_rows_take_the_overflow_path() {
        let path = fresh("overflow.gdb");
        let mut e = PagedEngine::create(&path).unwrap();
        e.create_table(&demo_schema()).unwrap();
        e.append("T", &row(0, 3 * PAGE_SIZE)).unwrap();
        e.append("T", &row(1, 10)).unwrap();
        e.checkpoint().unwrap();
        drop(e);
        let mut e = PagedEngine::open(&path).unwrap();
        let rows = e.rows("T").unwrap();
        assert_eq!(rows[0], row(0, 3 * PAGE_SIZE));
        assert_eq!(rows[1], row(1, 10));
    }

    #[test]
    fn delete_by_pk_tombstones_and_recovers() {
        let path = fresh("delete.gdb");
        let mut e = PagedEngine::create(&path).unwrap();
        e.create_table(&demo_schema()).unwrap();
        for i in 0..6 {
            e.append("T", &row(i, 4)).unwrap();
        }
        e.checkpoint().unwrap();
        assert!(e
            .delete_by_pk("T", &Value::Text("row-00003".into()))
            .unwrap());
        assert!(!e
            .delete_by_pk("T", &Value::Text("row-00003".into()))
            .unwrap());
        e.append("T", &row(3, 4)).unwrap(); // re-insert after delete
        drop(e); // tail: delete + insert, not checkpointed
        let mut e = PagedEngine::open(&path).unwrap();
        let rows = e.rows("T").unwrap();
        assert_eq!(rows.len(), 6);
        let stats = e.stats().unwrap();
        assert_eq!(stats.tables[0].dead_slots, 1);
        assert_eq!(stats.tables[0].live_rows, 6);
    }

    #[test]
    fn torn_checkpoint_replays_page_images() {
        let path = fresh("torn_ckpt.gdb");
        let mut e = PagedEngine::create(&path).unwrap();
        e.create_table(&demo_schema()).unwrap();
        for i in 0..20 {
            e.append("T", &row(i, 8)).unwrap();
        }
        // Simulate a checkpoint that wrote its WAL images + commit but
        // died before writing the data file: log images, then "crash".
        e.write_catalog_and_header().unwrap();
        let dirty = e.pool.dirty_ids();
        for id in &dirty {
            let data = e.pool.resident(*id).unwrap().to_vec();
            e.wal
                .append(&WalRecord::PageImage { page: *id, data })
                .unwrap();
        }
        e.wal.append(&WalRecord::Commit).unwrap();
        drop(e); // data file still holds only the (empty) create state
        let mut e = PagedEngine::open(&path).unwrap();
        assert_eq!(e.rows("T").unwrap().len(), 20);
        e.checkpoint().unwrap();
        drop(e);
        let mut e = PagedEngine::open(&path).unwrap();
        assert_eq!(e.rows("T").unwrap().len(), 20);
    }

    #[test]
    fn write_database_is_deterministic_and_compacts() {
        let mut db = Database::new();
        db.create_table(demo_schema()).unwrap();
        let mut ins = Insert::into("T", row(0, 8));
        for i in 1..50 {
            ins.rows.push(row(i, 8));
        }
        db.insert(ins).unwrap();
        let a = fresh("bulk_a.gdb");
        let b = fresh("bulk_b.gdb");
        write_database(&a, &db).unwrap();
        write_database(&b, &db).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert!(!wal_path(&a).exists());
        let mut e = PagedEngine::open(&a).unwrap();
        assert_eq!(e.rows("T").unwrap().len(), 50);
    }
}
