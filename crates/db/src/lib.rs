//! # goofi-db — embedded SQL-compatible database
//!
//! The GOOFI fault-injection tool (DSN 2001) stores *all* of its data —
//! target-system descriptions, campaign definitions and logged system
//! states — in a SQL database whose foreign keys "prevent inconsistencies
//! in the database" (paper, Section 2.3). This crate is that substrate: an
//! embedded relational engine with
//!
//! * typed columns ([`ValueType`]) with PRIMARY KEY / UNIQUE / NOT NULL
//!   constraints,
//! * foreign keys with restrict semantics, including self-references (the
//!   paper's `parentExperiment` → `experimentName` link),
//! * a programmatic statement API ([`Select`], [`Insert`], [`Update`],
//!   [`Delete`]) and a SQL text layer ([`Database::execute_sql`]),
//! * inner joins, WHERE / GROUP BY / ORDER BY / LIMIT, aggregates
//!   (COUNT / SUM / AVG / MIN / MAX),
//! * snapshot transactions and JSON persistence.
//!
//! # Examples
//!
//! ```
//! use goofi_db::{Database, SqlOutput};
//!
//! # fn main() -> Result<(), goofi_db::DbError> {
//! let mut db = Database::new();
//! db.execute_sql(
//!     "CREATE TABLE LoggedSystemState (
//!          experimentName TEXT PRIMARY KEY,
//!          outcome TEXT)",
//! )?;
//! db.execute_sql("INSERT INTO LoggedSystemState VALUES ('E1', 'Detected')")?;
//! let rs = db.query("SELECT outcome, COUNT(*) AS n FROM LoggedSystemState GROUP BY outcome")?;
//! assert_eq!(rs.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod database;
mod error;
mod expr;
mod persist;
mod query;
mod schema;
mod sql;
pub mod storage;
mod table;
mod value;

pub use database::Database;
pub use error::DbError;
pub use expr::{BinOp, Expr};
pub use persist::{journal_path, Journal};
pub use query::{AggFunc, Delete, Insert, Join, ResultSet, Select, SelectItem, SortOrder, Update};
pub use schema::{Column, ForeignKey, IndexSpec, TableSchema};
pub use sql::SqlOutput;
pub use table::{Row, Table};
pub use value::{Value, ValueType};
