//! In-memory row storage for one table, with unique + secondary indexes.

use crate::error::DbError;
use crate::schema::TableSchema;
use crate::storage::BTree;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A stored row: one [`Value`] per schema column, in declaration order.
pub type Row = Vec<Value>;

/// Ordered index key wrapping [`Value::total_cmp`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct IndexKey(pub Value);

impl PartialEq for IndexKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for IndexKey {}
impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Storage and indexes for one table.
///
/// Rows live in a slab (`Vec<Option<Row>>`); row ids are stable across
/// deletes, which keeps index maintenance simple. Every UNIQUE / PRIMARY KEY
/// column gets a unique index; every foreign-key child column gets a
/// multi-index used for referential-integrity checks on parent deletes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Option<Row>>,
    live: usize,
    /// column index -> (key -> row id), for UNIQUE columns.
    #[serde(skip)]
    unique_indexes: BTreeMap<usize, BTreeMap<IndexKey, usize>>,
    /// column index -> (key -> row ids), for FK child columns.
    #[serde(skip)]
    multi_indexes: BTreeMap<usize, BTreeMap<IndexKey, Vec<usize>>>,
    /// index name -> (composite key -> row ids), for the schema's
    /// declared secondary indexes. Deletes empty the id vector (the
    /// B-tree is append-only); `rebuild_indexes` builds a clean tree.
    #[serde(skip)]
    secondary: BTreeMap<String, BTree<Vec<IndexKey>, Vec<usize>>>,
}

impl Table {
    /// Creates an empty table with indexes derived from the schema.
    pub fn new(schema: TableSchema) -> Table {
        let mut unique_indexes = BTreeMap::new();
        let mut multi_indexes = BTreeMap::new();
        for (i, col) in schema.columns().iter().enumerate() {
            if col.is_unique() {
                unique_indexes.insert(i, BTreeMap::new());
            } else if col.foreign_key().is_some() {
                multi_indexes.insert(i, BTreeMap::new());
            }
        }
        let mut secondary = BTreeMap::new();
        for ix in schema.indexes() {
            secondary.insert(ix.name.clone(), BTree::new());
        }
        Table {
            schema,
            rows: Vec::new(),
            live: 0,
            unique_indexes,
            multi_indexes,
            secondary,
        }
    }

    /// The composite key of `row` under the named index's column list.
    fn composite_key(schema: &TableSchema, columns: &[String], row: &Row) -> Vec<IndexKey> {
        columns
            .iter()
            .map(|c| {
                let ci = schema.column_index(c).expect("index columns validated");
                IndexKey(row[ci].clone())
            })
            .collect()
    }

    /// Adds `id` to every secondary index under `row`'s keys.
    fn index_row_secondary(&mut self, id: usize, row: &Row) {
        for ix in self.schema.indexes() {
            let key = Self::composite_key(&self.schema, &ix.columns, row);
            let tree = self
                .secondary
                .get_mut(&ix.name)
                .expect("secondary tree exists for every declared index");
            match tree.get_mut(&key) {
                Some(ids) => ids.push(id),
                None => {
                    tree.insert(key, vec![id]);
                }
            }
        }
    }

    /// Drops `id` from every secondary index under `row`'s keys. The
    /// key itself stays in the tree with an emptied id list.
    fn unindex_row_secondary(&mut self, id: usize, row: &Row) {
        for ix in self.schema.indexes() {
            let key = Self::composite_key(&self.schema, &ix.columns, row);
            if let Some(ids) = self
                .secondary
                .get_mut(&ix.name)
                .expect("secondary tree exists for every declared index")
                .get_mut(&key)
            {
                ids.retain(|&r| r != id);
            }
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Validates a row against the schema (arity, types, NOT NULL) and
    /// coerces integer→real. Does not check uniqueness.
    pub(crate) fn validate(&self, row: Row) -> Result<Row, DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(self.schema.columns()) {
            if value.is_null() {
                if col.is_not_null() {
                    return Err(DbError::NullViolation {
                        table: self.schema.name().to_owned(),
                        column: col.name().to_owned(),
                    });
                }
                out.push(Value::Null);
                continue;
            }
            if !value.is_compatible_with(col.ty()) {
                return Err(DbError::TypeMismatch {
                    table: self.schema.name().to_owned(),
                    column: col.name().to_owned(),
                    expected: col.ty().name(),
                    got: value.type_name(),
                });
            }
            out.push(value.coerce(col.ty()));
        }
        Ok(out)
    }

    /// Inserts a validated row, enforcing uniqueness. Returns the row id.
    ///
    /// # Errors
    ///
    /// All of [`Table::validate`]'s errors, plus [`DbError::UniqueViolation`].
    pub(crate) fn insert(&mut self, row: Row) -> Result<usize, DbError> {
        let row = self.validate(row)?;
        // Check all unique constraints before mutating anything.
        for (&ci, index) in &self.unique_indexes {
            let v = &row[ci];
            if !v.is_null() && index.contains_key(&IndexKey(v.clone())) {
                return Err(DbError::UniqueViolation {
                    table: self.schema.name().to_owned(),
                    column: self.schema.columns()[ci].name().to_owned(),
                });
            }
        }
        let id = self.rows.len();
        for (&ci, index) in &mut self.unique_indexes {
            let v = &row[ci];
            if !v.is_null() {
                index.insert(IndexKey(v.clone()), id);
            }
        }
        for (&ci, index) in &mut self.multi_indexes {
            let v = &row[ci];
            if !v.is_null() {
                index.entry(IndexKey(v.clone())).or_default().push(id);
            }
        }
        self.index_row_secondary(id, &row);
        self.rows.push(Some(row));
        self.live += 1;
        Ok(id)
    }

    /// Removes the row with the given id, updating indexes. Returns the row.
    pub(crate) fn remove(&mut self, id: usize) -> Option<Row> {
        let row = self.rows.get_mut(id)?.take()?;
        self.live -= 1;
        for (&ci, index) in &mut self.unique_indexes {
            if !row[ci].is_null() {
                index.remove(&IndexKey(row[ci].clone()));
            }
        }
        for (&ci, index) in &mut self.multi_indexes {
            if !row[ci].is_null() {
                if let Some(ids) = index.get_mut(&IndexKey(row[ci].clone())) {
                    ids.retain(|&r| r != id);
                    if ids.is_empty() {
                        index.remove(&IndexKey(row[ci].clone()));
                    }
                }
            }
        }
        self.unindex_row_secondary(id, &row);
        Some(row)
    }

    /// Replaces the row with the given id with a validated new row,
    /// enforcing uniqueness. The old row is returned.
    pub(crate) fn replace(&mut self, id: usize, row: Row) -> Result<Row, DbError> {
        let row = self.validate(row)?;
        for (&ci, index) in &self.unique_indexes {
            let v = &row[ci];
            if v.is_null() {
                continue;
            }
            if let Some(&other) = index.get(&IndexKey(v.clone())) {
                if other != id {
                    return Err(DbError::UniqueViolation {
                        table: self.schema.name().to_owned(),
                        column: self.schema.columns()[ci].name().to_owned(),
                    });
                }
            }
        }
        let old = self
            .remove(id)
            .ok_or_else(|| DbError::Eval(format!("row {id} does not exist")))?;
        // Re-insert at the same id to keep ids stable.
        for (&ci, index) in &mut self.unique_indexes {
            if !row[ci].is_null() {
                index.insert(IndexKey(row[ci].clone()), id);
            }
        }
        for (&ci, index) in &mut self.multi_indexes {
            if !row[ci].is_null() {
                index.entry(IndexKey(row[ci].clone())).or_default().push(id);
            }
        }
        self.index_row_secondary(id, &row);
        self.rows[id] = Some(row);
        self.live += 1;
        Ok(old)
    }

    /// Drops trailing deleted slots from the row slab so serialisation
    /// does not retain tombstones past the last live row. Ids of live
    /// rows are unaffected (only `None` slots after them are removed), so
    /// this is always safe to call.
    pub(crate) fn truncate_tombstones(&mut self) {
        while matches!(self.rows.last(), Some(None)) {
            self.rows.pop();
        }
    }

    /// Iterates over `(row id, row)` pairs of live rows.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
    }

    /// Fetches a row by id.
    pub fn row(&self, id: usize) -> Option<&Row> {
        self.rows.get(id).and_then(|r| r.as_ref())
    }

    /// Point lookup through a unique index. `column` must be UNIQUE.
    pub fn lookup_unique(&self, column: usize, key: &Value) -> Option<usize> {
        self.unique_indexes
            .get(&column)?
            .get(&IndexKey(key.clone()))
            .copied()
    }

    /// Ids of live rows with `key` in the multi-indexed (foreign-key
    /// child) column, ascending. Empty when the key is absent or the
    /// column has no multi-index.
    pub fn lookup_multi(&self, column: usize, key: &Value) -> Vec<usize> {
        let mut ids = self
            .multi_indexes
            .get(&column)
            .and_then(|ix| ix.get(&IndexKey(key.clone())))
            .cloned()
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// Whether any live row has `key` in the (indexed or not) column.
    pub fn contains_value(&self, column: usize, key: &Value) -> bool {
        if let Some(index) = self.unique_indexes.get(&column) {
            return index.contains_key(&IndexKey(key.clone()));
        }
        if let Some(index) = self.multi_indexes.get(&column) {
            return index.contains_key(&IndexKey(key.clone()));
        }
        self.iter()
            .any(|(_, row)| row[column].sql_eq(key) == Some(true))
    }

    /// Rebuilds all indexes from the schema and row storage (used after
    /// deserialisation, where the index maps are skipped).
    pub(crate) fn rebuild_indexes(&mut self) {
        self.unique_indexes.clear();
        self.multi_indexes.clear();
        self.secondary.clear();
        for (i, col) in self.schema.columns().iter().enumerate() {
            if col.is_unique() {
                self.unique_indexes.insert(i, BTreeMap::new());
            } else if col.foreign_key().is_some() {
                self.multi_indexes.insert(i, BTreeMap::new());
            }
        }
        for ix in self.schema.indexes() {
            self.secondary.insert(ix.name.clone(), BTree::new());
        }
        let entries: Vec<(usize, Row)> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r.clone())))
            .collect();
        self.live = entries.len();
        for (id, row) in entries {
            for (&ci, index) in &mut self.unique_indexes {
                if !row[ci].is_null() {
                    index.insert(IndexKey(row[ci].clone()), id);
                }
            }
            for (&ci, index) in &mut self.multi_indexes {
                if !row[ci].is_null() {
                    index.entry(IndexKey(row[ci].clone())).or_default().push(id);
                }
            }
            self.index_row_secondary(id, &row);
        }
    }

    /// Appends a row without constraint or type checks, for the paged
    /// engine's load path (the row passed every check when originally
    /// inserted). The caller must run [`Table::rebuild_indexes`] once
    /// all rows are in.
    pub(crate) fn push_unchecked(&mut self, row: Row) {
        self.rows.push(Some(row));
        self.live += 1;
    }

    /// Adds a declared secondary index to an existing table and indexes
    /// the current rows. A no-op when an index of that name is already
    /// declared (schema-migration idempotency).
    pub(crate) fn declare_index(&mut self, name: &str, columns: &[&str]) -> Result<(), DbError> {
        if self.schema.indexes().iter().any(|ix| ix.name == name) {
            return Ok(());
        }
        self.schema = self.schema.clone().with_index(name, columns)?;
        self.rebuild_indexes();
        Ok(())
    }

    /// Answers an equality lookup on a prefix of the named secondary
    /// index's columns: the ids of all live rows whose indexed columns
    /// start with `prefix`, ascending. `None` when the index does not
    /// exist or `prefix` is empty/too long — the caller falls back to
    /// a scan.
    pub fn secondary_scan(&self, index: &str, prefix: &[Value]) -> Option<Vec<usize>> {
        let spec = self.schema.indexes().iter().find(|ix| ix.name == index)?;
        if prefix.is_empty() || prefix.len() > spec.columns.len() {
            return None;
        }
        let tree = self.secondary.get(index)?;
        let want: Vec<IndexKey> = prefix.iter().map(|v| IndexKey(v.clone())).collect();
        // Null sorts first under `total_cmp`, so padding the start key
        // with Nulls lands on the first composite key with this prefix.
        let mut start = want.clone();
        start.resize_with(spec.columns.len(), || IndexKey(Value::Null));
        let mut ids = Vec::new();
        tree.for_each_from(&start, &mut |key, rows| {
            if key[..want.len()] != want[..] {
                return false; // past the prefix range
            }
            ids.extend_from_slice(rows);
            true
        });
        ids.sort_unstable();
        Some(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::ValueType;

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    Column::new("id", ValueType::Text).primary_key(),
                    Column::new("n", ValueType::Integer),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = table();
        let id = t.insert(vec!["a".into(), 1.into()]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup_unique(0, &"a".into()), Some(id));
        assert_eq!(t.row(id).unwrap()[1], Value::Integer(1));
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        let mut t = table();
        t.insert(vec!["a".into(), 1.into()]).unwrap();
        let err = t.insert(vec!["a".into(), 2.into()]).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_and_type_checked() {
        let mut t = table();
        assert!(matches!(
            t.insert(vec!["a".into()]).unwrap_err(),
            DbError::ArityMismatch { .. }
        ));
        assert!(matches!(
            t.insert(vec![1.into(), 1.into()]).unwrap_err(),
            DbError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn not_null_enforced() {
        let mut t = table();
        let err = t.insert(vec![Value::Null, 1.into()]).unwrap_err();
        assert!(matches!(err, DbError::NullViolation { .. }));
    }

    #[test]
    fn remove_updates_index_and_allows_reinsert() {
        let mut t = table();
        let id = t.insert(vec!["a".into(), 1.into()]).unwrap();
        assert!(t.remove(id).is_some());
        assert_eq!(t.len(), 0);
        assert_eq!(t.lookup_unique(0, &"a".into()), None);
        t.insert(vec!["a".into(), 2.into()]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replace_keeps_id_and_checks_unique() {
        let mut t = table();
        let a = t.insert(vec!["a".into(), 1.into()]).unwrap();
        t.insert(vec!["b".into(), 2.into()]).unwrap();
        // Renaming a -> b collides.
        let err = t.replace(a, vec!["b".into(), 3.into()]).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // Updating the non-key column of `a` through replace is fine.
        t.replace(a, vec!["a".into(), 9.into()]).unwrap();
        assert_eq!(t.row(a).unwrap()[1], Value::Integer(9));
    }

    #[test]
    fn secondary_scan_answers_prefix_lookups() {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", ValueType::Text).primary_key(),
                Column::new("grp", ValueType::Text),
                Column::new("sub", ValueType::Text),
            ],
        )
        .unwrap()
        .with_index("by_grp_sub", &["grp", "sub"])
        .unwrap();
        let mut t = Table::new(schema);
        for (id, grp, sub) in [
            ("a", "g1", "x"),
            ("b", "g1", "y"),
            ("c", "g2", "x"),
            ("d", "g1", "x"),
        ] {
            t.insert(vec![id.into(), grp.into(), sub.into()]).unwrap();
        }
        assert_eq!(
            t.secondary_scan("by_grp_sub", &["g1".into()]),
            Some(vec![0, 1, 3])
        );
        assert_eq!(
            t.secondary_scan("by_grp_sub", &["g1".into(), "x".into()]),
            Some(vec![0, 3])
        );
        assert_eq!(t.secondary_scan("by_grp_sub", &["g9".into()]), Some(vec![]));
        assert_eq!(t.secondary_scan("missing", &["g1".into()]), None);
        // Deletes drop out; rebuild matches incremental maintenance.
        t.remove(0);
        assert_eq!(
            t.secondary_scan("by_grp_sub", &["g1".into(), "x".into()]),
            Some(vec![3])
        );
        t.rebuild_indexes();
        assert_eq!(
            t.secondary_scan("by_grp_sub", &["g1".into(), "x".into()]),
            Some(vec![3])
        );
    }

    #[test]
    fn rebuild_indexes_matches_incremental() {
        let mut t = table();
        t.insert(vec!["a".into(), 1.into()]).unwrap();
        let b = t.insert(vec!["b".into(), 2.into()]).unwrap();
        t.remove(b);
        let mut rebuilt = t.clone();
        rebuilt.rebuild_indexes();
        assert_eq!(rebuilt.len(), t.len());
        assert_eq!(rebuilt.lookup_unique(0, &"a".into()), Some(0));
        assert_eq!(rebuilt.lookup_unique(0, &"b".into()), None);
    }
}
