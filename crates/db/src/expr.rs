//! Expression AST used in WHERE clauses, projections and UPDATE SET lists.

use crate::error::DbError;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Resolves a (possibly qualified) column reference to a value during
/// expression evaluation; rows are bound by the executor.
pub type Resolver<'a> = dyn Fn(Option<&str>, &str) -> Result<Value, DbError> + 'a;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // node fields follow standard SQL meaning
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference, optionally qualified (`table.column`).
    Column {
        /// Optional table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `NOT e`
    Not(Box<Expr>),
    /// `e IS NULL` / `e IS NOT NULL`
    IsNull { expr: Box<Expr>, negated: bool },
    /// `e IN (v1, v2, ...)`
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `e LIKE 'pat%'` with `%` (any run) and `_` (any char) wildcards.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Shorthand: qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand: `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Eq,
            lhs: Box::new(self),
            rhs: Box::new(other),
        }
    }

    /// Shorthand: `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(self),
            rhs: Box::new(other),
        }
    }

    /// Shorthand: `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Or,
            lhs: Box::new(self),
            rhs: Box::new(other),
        }
    }

    /// Evaluates the expression; `resolve` maps a column reference to a
    /// value (rows are bound by the executor).
    ///
    /// # Errors
    ///
    /// [`DbError::Eval`] on unknown columns or type errors (e.g. adding
    /// text to an integer). SQL three-valued logic applies: comparisons
    /// with NULL yield NULL, `NULL AND FALSE` is FALSE, etc.
    pub fn eval(&self, resolve: &Resolver<'_>) -> Result<Value, DbError> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { table, name } => resolve(table.as_deref(), name),
            Expr::Not(e) => match e.eval(resolve)? {
                Value::Null => Ok(Value::Null),
                Value::Boolean(b) => Ok(Value::Boolean(!b)),
                other => Err(DbError::Eval(format!("NOT applied to non-boolean {other}"))),
            },
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(resolve)?;
                Ok(Value::Boolean(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(resolve)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let item = item.eval(resolve)?;
                    match v.sql_eq(&item) {
                        Some(true) => return Ok(Value::Boolean(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Boolean(*negated))
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(resolve)?;
                let p = pattern.eval(resolve)?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Text(s), Value::Text(p)) => {
                        Ok(Value::Boolean(like_match(&s, &p) != *negated))
                    }
                    (v, p) => Err(DbError::Eval(format!(
                        "LIKE requires text operands, got {v} LIKE {p}"
                    ))),
                }
            }
            Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, resolve),
        }
    }

    /// Evaluates as a WHERE predicate: NULL counts as not-matching.
    pub fn matches(&self, resolve: &Resolver<'_>) -> Result<bool, DbError> {
        match self.eval(resolve)? {
            Value::Boolean(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(DbError::Eval(format!(
                "WHERE clause evaluated to non-boolean {other}"
            ))),
        }
    }
}

fn eval_binary(
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    resolve: &Resolver<'_>,
) -> Result<Value, DbError> {
    use BinOp::*;
    // Short-circuit logical operators with three-valued logic.
    if matches!(op, And | Or) {
        let l = lhs.eval(resolve)?;
        let l = match l {
            Value::Boolean(b) => Some(b),
            Value::Null => None,
            other => {
                return Err(DbError::Eval(format!(
                    "logical operator applied to non-boolean {other}"
                )))
            }
        };
        match (op, l) {
            (And, Some(false)) => return Ok(Value::Boolean(false)),
            (Or, Some(true)) => return Ok(Value::Boolean(true)),
            _ => {}
        }
        let r = rhs.eval(resolve)?;
        let r = match r {
            Value::Boolean(b) => Some(b),
            Value::Null => None,
            other => {
                return Err(DbError::Eval(format!(
                    "logical operator applied to non-boolean {other}"
                )))
            }
        };
        return Ok(match (op, l, r) {
            (And, Some(a), Some(b)) => Value::Boolean(a && b),
            (And, None, Some(false)) | (And, Some(false), None) => Value::Boolean(false),
            (And, _, _) => Value::Null,
            (Or, Some(a), Some(b)) => Value::Boolean(a || b),
            (Or, None, Some(true)) | (Or, Some(true), None) => Value::Boolean(true),
            (Or, _, _) => Value::Null,
            _ => unreachable!(),
        });
    }

    let l = lhs.eval(resolve)?;
    let r = rhs.eval(resolve)?;
    match op {
        Eq | Ne => Ok(match l.sql_eq(&r) {
            None => Value::Null,
            Some(eq) => Value::Boolean(if op == Eq { eq } else { !eq }),
        }),
        Lt | Le | Gt | Ge => Ok(match l.compare(&r) {
            None => {
                if l.is_null() || r.is_null() {
                    Value::Null
                } else {
                    return Err(DbError::Eval(format!("cannot compare {l} with {r}")));
                }
            }
            Some(ord) => Value::Boolean(match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            }),
        }),
        Add | Sub | Mul | Div | Rem => arith(op, l, r),
        And | Or => unreachable!("handled above"),
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value, DbError> {
    use BinOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (&l, &r) {
        (Value::Integer(a), Value::Integer(b)) => {
            let (a, b) = (*a, *b);
            let out = match op {
                Add => a.checked_add(b),
                Sub => a.checked_sub(b),
                Mul => a.checked_mul(b),
                Div => {
                    if b == 0 {
                        return Err(DbError::Eval("integer division by zero".into()));
                    }
                    a.checked_div(b)
                }
                Rem => {
                    if b == 0 {
                        return Err(DbError::Eval("integer modulo by zero".into()));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Integer)
                .ok_or_else(|| DbError::Eval("integer overflow".into()))
        }
        _ => {
            let (a, b) = match (l.as_real(), r.as_real()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(DbError::Eval(format!(
                        "arithmetic on non-numeric operands {l} and {r}"
                    )))
                }
            };
            Ok(Value::Real(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Rem => a % b,
                _ => unreachable!(),
            }))
        }
    }
}

/// SQL LIKE matcher with `%` and `_` wildcards (case sensitive).
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try consuming 0..=len chars.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_cols(_: Option<&str>, name: &str) -> Result<Value, DbError> {
        Err(DbError::Eval(format!("unknown column {name}")))
    }

    fn eval(e: &Expr) -> Value {
        e.eval(&no_cols).unwrap()
    }

    #[test]
    fn comparison_operators() {
        let e = Expr::lit(3).eq(Expr::lit(3));
        assert_eq!(eval(&e), Value::Boolean(true));
        let e = Expr::Binary {
            op: BinOp::Lt,
            lhs: Box::new(Expr::lit(2)),
            rhs: Box::new(Expr::lit(2.5)),
        };
        assert_eq!(eval(&e), Value::Boolean(true));
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL; NULL OR TRUE = TRUE.
        let null = Expr::lit(Value::Null).eq(Expr::lit(1)); // NULL
        assert_eq!(
            eval(&null.clone().and(Expr::lit(false))),
            Value::Boolean(false)
        );
        assert_eq!(eval(&null.clone().and(Expr::lit(true))), Value::Null);
        assert_eq!(
            eval(&null.clone().or(Expr::lit(true))),
            Value::Boolean(true)
        );
        assert_eq!(eval(&null.or(Expr::lit(false))), Value::Null);
    }

    #[test]
    fn null_predicate_does_not_match() {
        let e = Expr::lit(Value::Null).eq(Expr::lit(1));
        assert!(!e.matches(&no_cols).unwrap());
    }

    #[test]
    fn is_null_checks() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::lit(Value::Null)),
            negated: false,
        };
        assert_eq!(eval(&e), Value::Boolean(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::lit(1)),
            negated: true,
        };
        assert_eq!(eval(&e), Value::Boolean(true));
    }

    #[test]
    fn in_list_with_null_is_unknown() {
        let e = Expr::InList {
            expr: Box::new(Expr::lit(5)),
            list: vec![Expr::lit(1), Expr::lit(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e), Value::Null);
        let e = Expr::InList {
            expr: Box::new(Expr::lit(1)),
            list: vec![Expr::lit(1), Expr::lit(2)],
            negated: false,
        };
        assert_eq!(eval(&e), Value::Boolean(true));
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("experiment_42", "experiment%"));
        assert!(like_match("E1", "E_"));
        assert!(!like_match("E12", "E_"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%c"));
        assert!(!like_match("abc", "%d"));
    }

    #[test]
    fn arithmetic_and_errors() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::lit(2)),
            rhs: Box::new(Expr::lit(3)),
        };
        assert_eq!(eval(&e), Value::Integer(5));
        let e = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::lit(1)),
            rhs: Box::new(Expr::lit(0)),
        };
        assert!(e.eval(&no_cols).is_err());
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::lit(i64::MAX)),
            rhs: Box::new(Expr::lit(2)),
        };
        assert!(e.eval(&no_cols).is_err());
    }

    #[test]
    fn mixed_arithmetic_promotes_to_real() {
        let e = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::lit(1)),
            rhs: Box::new(Expr::lit(2.0)),
        };
        assert_eq!(eval(&e), Value::Real(0.5));
    }
}
