//! Dynamically typed cell values and their static types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit IEEE float.
    Real,
    /// UTF-8 text.
    Text,
    /// Raw bytes (used for logged state vectors).
    Blob,
    /// Boolean.
    Boolean,
}

impl ValueType {
    /// Human-readable name used in error messages and `CREATE TABLE` syntax.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Integer => "INTEGER",
            ValueType::Real => "REAL",
            ValueType::Text => "TEXT",
            ValueType::Blob => "BLOB",
            ValueType::Boolean => "BOOLEAN",
        }
    }

    /// Parses a type name as used in SQL (`INTEGER`, `REAL`, `TEXT`, `BLOB`,
    /// `BOOLEAN`); case-insensitive. Returns `None` for unknown names.
    pub fn parse(name: &str) -> Option<ValueType> {
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" => Some(ValueType::Integer),
            "REAL" | "FLOAT" | "DOUBLE" => Some(ValueType::Real),
            "TEXT" | "VARCHAR" | "STRING" => Some(ValueType::Text),
            "BLOB" | "BYTES" => Some(ValueType::Blob),
            "BOOLEAN" | "BOOL" => Some(ValueType::Boolean),
            _ => None,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed cell value.
///
/// `Null` is a member of every column type (unless the column is declared
/// NOT NULL), mirroring SQL semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Blob(Vec<u8>),
    /// Boolean.
    Boolean(bool),
}

impl Value {
    /// The static type of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Integer(_) => Some(ValueType::Integer),
            Value::Real(_) => Some(ValueType::Real),
            Value::Text(_) => Some(ValueType::Text),
            Value::Blob(_) => Some(ValueType::Blob),
            Value::Boolean(_) => Some(ValueType::Boolean),
        }
    }

    /// Name of this value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self.value_type() {
            None => "NULL",
            Some(t) => t.name(),
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value can be stored in a column of type `ty`.
    ///
    /// NULL is compatible with every type; an `Integer` may be widened into
    /// a `Real` column (the widening is performed by [`Value::coerce`]).
    pub fn is_compatible_with(&self, ty: ValueType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Integer(_), ValueType::Integer)
                | (Value::Integer(_), ValueType::Real)
                | (Value::Real(_), ValueType::Real)
                | (Value::Text(_), ValueType::Text)
                | (Value::Blob(_), ValueType::Blob)
                | (Value::Boolean(_), ValueType::Boolean)
        )
    }

    /// Coerces this value for storage in a column of type `ty`.
    ///
    /// The only lossy-free coercion performed is integer→real widening;
    /// all other compatible values are returned unchanged. The caller must
    /// have checked [`Value::is_compatible_with`] first.
    pub fn coerce(self, ty: ValueType) -> Value {
        match (self, ty) {
            (Value::Integer(i), ValueType::Real) => Value::Real(i as f64),
            (v, _) => v,
        }
    }

    /// Extracts an `i64`, if this is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts an `f64` from a real or (widened) integer.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a byte slice, if this is a blob.
    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts a bool, if this is a boolean.
    pub fn as_boolean(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL three-valued comparison. Returns `None` if either side is NULL
    /// or the types are not comparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Integer(a), Value::Integer(b)) => Some(a.cmp(b)),
            (Value::Real(a), Value::Real(b)) => a.partial_cmp(b),
            (Value::Integer(a), Value::Real(b)) => (*a as f64).partial_cmp(b),
            (Value::Real(a), Value::Integer(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Blob(a), Value::Blob(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality: NULL equals nothing (returns `None`); values of
    /// incomparable types are unequal.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            _ => match self.compare(other) {
                Some(ord) => Some(ord == Ordering::Equal),
                // Comparable NULL-free values of different types: unequal.
                None => Some(false),
            },
        }
    }

    /// A total ordering used for ORDER BY and index keys: NULLs sort first,
    /// then by type tag, then by value (NaN sorts after all other reals).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Boolean(_) => 1,
                Value::Integer(_) => 2,
                Value::Real(_) => 2, // numerics compare with each other
                Value::Text(_) => 3,
                Value::Blob(_) => 4,
            }
        }
        match (self, other) {
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
            (Value::Integer(a), Value::Real(b)) => (*a as f64).total_cmp(b),
            (Value::Real(a), Value::Integer(b)) => a.total_cmp(&(*b as f64)),
            _ => match rank(self).cmp(&rank(other)) {
                Ordering::Equal => self.compare(other).unwrap_or(Ordering::Equal),
                ord => ord,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Blob(b) => write!(f, "x'{}'", hex(b)),
            Value::Boolean(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Integer(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Integer(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Blob(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_roundtrip_through_parse() {
        for ty in [
            ValueType::Integer,
            ValueType::Real,
            ValueType::Text,
            ValueType::Blob,
            ValueType::Boolean,
        ] {
            assert_eq!(ValueType::parse(ty.name()), Some(ty));
        }
        assert_eq!(ValueType::parse("int"), Some(ValueType::Integer));
        assert_eq!(ValueType::parse("nonsense"), None);
    }

    #[test]
    fn null_compares_as_unknown() {
        assert_eq!(Value::Null.compare(&Value::Integer(1)), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Integer(2).compare(&Value::Real(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Real(2.0).sql_eq(&Value::Integer(2)), Some(true));
    }

    #[test]
    fn cross_type_equality_is_false_not_unknown() {
        assert_eq!(
            Value::Text("1".into()).sql_eq(&Value::Integer(1)),
            Some(false)
        );
    }

    #[test]
    fn integer_widens_into_real_column() {
        let v = Value::Integer(3);
        assert!(v.is_compatible_with(ValueType::Real));
        assert_eq!(v.coerce(ValueType::Real), Value::Real(3.0));
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = vec![Value::Integer(2), Value::Null, Value::Integer(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![Value::Null, Value::Integer(1), Value::Integer(2)]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Text("x".into()).to_string(), "'x'");
        assert_eq!(Value::Blob(vec![0xab, 0x01]).to_string(), "x'ab01'");
        assert_eq!(Value::Boolean(true).to_string(), "TRUE");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Integer(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some("a")), Value::Text("a".into()));
    }
}
