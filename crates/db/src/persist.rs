//! Persistence: snapshots plus an append-only row journal.
//!
//! The GOOFI paper stores all tool data in a portable SQL database so that
//! campaigns survive host restarts and can be moved between host platforms;
//! JSON on disk is our portable equivalent. Two mechanisms cooperate:
//!
//! * **Snapshots** — [`Database::save`] serialises the whole database and
//!   writes it *atomically* (temp file in the same directory, then rename),
//!   so a crash mid-write can never corrupt an existing database file.
//! * **Journal** — a WAL-style sidecar file (`<db>.journal`) holding one
//!   JSON line per appended row. Campaign runners append each finished
//!   experiment as it completes — O(row) bytes per experiment instead of
//!   re-serialising the whole database — and [`Database::load`] replays the
//!   journal over the snapshot. Replay is idempotent: rows already captured
//!   by a later snapshot are skipped, and a torn final line (crash while
//!   appending) is ignored.

use crate::database::Database;
use crate::error::DbError;
use crate::query::Insert;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Path of the journal sidecar belonging to a database file: the database
/// path with `.journal` appended (`goofi.json` → `goofi.json.journal`).
pub fn journal_path(db_path: impl AsRef<Path>) -> PathBuf {
    let p = db_path.as_ref();
    let mut name = p.file_name().unwrap_or_default().to_os_string();
    name.push(".journal");
    p.with_file_name(name)
}

/// One journalled row append.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalEntry {
    /// Target table.
    table: String,
    /// Full-width row values.
    row: Vec<Value>,
}

/// An open append-only row journal (see the module docs).
///
/// A `Journal` belongs to one database file; keep it open for the duration
/// of a campaign and call [`Journal::append`] once per finished row. After
/// a full snapshot ([`Database::save`]) the journal contents are redundant
/// and should be dropped with [`Journal::truncate`].
#[derive(Debug)]
pub struct Journal {
    file: fs::File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal sidecar of `db_path`.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem errors.
    pub fn open(db_path: impl AsRef<Path>) -> Result<Journal, DbError> {
        let path = journal_path(db_path);
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| DbError::Io(format!("open journal {}: {e}", path.display())))?;
        Ok(Journal { file, path })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one row destined for `table` as a single JSON line and
    /// flushes it to the OS, so a finished experiment survives a tool
    /// crash.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on serialisation or filesystem errors.
    pub fn append(&mut self, table: &str, row: &[Value]) -> Result<(), DbError> {
        // Span names are string literals (matching goofi-telemetry's
        // `names::JOURNAL_*`) because the telemetry crate sits above this
        // one in the dependency graph.
        let write = {
            let _s = tracing::span("journal.append");
            let entry = JournalEntry {
                table: table.to_owned(),
                row: row.to_vec(),
            };
            let mut line = serde_json::to_string(&entry).map_err(|e| DbError::Io(e.to_string()))?;
            line.push('\n');
            self.file.write_all(line.as_bytes())
        };
        write
            .and_then(|()| {
                let _s = tracing::span("journal.fsync");
                self.file.flush()
            })
            .map_err(|e| DbError::Io(format!("append journal {}: {e}", self.path.display())))
    }

    /// Empties the journal (after its rows were captured by a snapshot).
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem errors.
    pub fn truncate(&mut self) -> Result<(), DbError> {
        self.file
            .set_len(0)
            .map_err(|e| DbError::Io(format!("truncate journal {}: {e}", self.path.display())))
    }
}

impl Database {
    /// Serialises the database to a JSON string.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] if serialisation fails (it cannot for well-formed
    /// databases; non-finite floats serialise as `null` and will load back
    /// as NULL).
    pub fn to_json(&self) -> Result<String, DbError> {
        serde_json::to_string(self).map_err(|e| DbError::Io(e.to_string()))
    }

    /// Restores a database from [`Database::to_json`] output. Indexes are
    /// rebuilt from row data.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on malformed input.
    pub fn from_json(json: &str) -> Result<Database, DbError> {
        let mut db: Database =
            serde_json::from_str(json).map_err(|e| DbError::Io(e.to_string()))?;
        db.rebuild_all_indexes();
        Ok(db)
    }

    /// Saves a full snapshot of the database to a file, atomically: the
    /// JSON is written to a temporary file in the same directory and then
    /// renamed into place, so a crash mid-write leaves any previous
    /// database file intact.
    ///
    /// Snapshots supersede the journal; callers holding an open [`Journal`]
    /// for this path should [`Journal::truncate`] it after a successful
    /// save.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        let path = path.as_ref();
        let json = self.to_json()?;
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        fs::write(&tmp, json).map_err(|e| DbError::Io(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            DbError::Io(format!("rename into {}: {e}", path.display()))
        })
    }

    /// Loads a database from a file written by [`Database::save`], then
    /// replays the sidecar journal (if one exists) so rows appended after
    /// the last snapshot reappear. Replay skips rows a snapshot already
    /// holds (unique-key collision) and tolerates a torn final line.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem or format errors, including a corrupt
    /// (non-final) journal line.
    pub fn load(path: impl AsRef<Path>) -> Result<Database, DbError> {
        let path = path.as_ref();
        let json = fs::read_to_string(path).map_err(|e| DbError::Io(e.to_string()))?;
        let mut db = Database::from_json(&json)?;
        db.replay_journal(journal_path(path))?;
        Ok(db)
    }

    /// Replays an append-only journal file into the database. Returns the
    /// number of rows applied. Missing file means nothing to replay.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on a corrupt non-final line; any non-duplicate
    /// insert error (unknown table, FK violation) is surfaced as-is.
    pub fn replay_journal(&mut self, journal: impl AsRef<Path>) -> Result<usize, DbError> {
        let journal = journal.as_ref();
        let text = match fs::read_to_string(journal) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => {
                return Err(DbError::Io(format!(
                    "read journal {}: {e}",
                    journal.display()
                )))
            }
        };
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut applied = 0;
        for (i, line) in lines.iter().enumerate() {
            let entry: JournalEntry = match serde_json::from_str(line) {
                Ok(entry) => entry,
                // A torn final line is the expected signature of a crash
                // mid-append; corruption anywhere else is a real error.
                Err(_) if i + 1 == lines.len() => break,
                Err(e) => {
                    return Err(DbError::Io(format!(
                        "corrupt journal line {} in {}: {e}",
                        i + 1,
                        journal.display()
                    )))
                }
            };
            match self.insert(Insert::into(entry.table, entry.row)) {
                Ok(_) => applied += 1,
                // Row already captured by a later snapshot: replay must be
                // idempotent.
                Err(DbError::UniqueViolation { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Insert, Select};
    use crate::schema::{Column, TableSchema};
    use crate::value::{Value, ValueType};

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    Column::new("id", ValueType::Text).primary_key(),
                    Column::new("v", ValueType::Integer),
                    Column::new("b", ValueType::Blob),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert(Insert::into(
            "t",
            vec!["a".into(), 1.into(), vec![1u8, 2].into()],
        ))
        .unwrap();
        db.insert(Insert::into(
            "t",
            vec!["b".into(), Value::Null, Value::Null],
        ))
        .unwrap();
        db
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("goofi_db_persist_test")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn json_roundtrip_preserves_rows_and_constraints() {
        let db = sample();
        let json = db.to_json().unwrap();
        let mut restored = Database::from_json(&json).unwrap();
        let rs = restored.query("SELECT id, v FROM t ORDER BY id").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Text("a".into()));
        // Unique index must be live after restore.
        let err = restored
            .insert(Insert::into("t", vec!["a".into(), 9.into(), Value::Null]))
            .unwrap_err();
        assert!(matches!(err, crate::DbError::UniqueViolation { .. }));
    }

    #[test]
    fn file_roundtrip() {
        let db = sample();
        let path = tmpdir("roundtrip").join("db.json");
        db.save(&path).unwrap();
        let restored = Database::load(&path).unwrap();
        assert_eq!(
            restored.select(Select::from("t")).unwrap().len(),
            db.select(Select::from("t")).unwrap().len()
        );
    }

    #[test]
    fn save_is_atomic_no_temp_residue() {
        let db = sample();
        let dir = tmpdir("atomic");
        let path = dir.join("db.json");
        // Save over an existing file; the temp file must be gone after.
        db.save(&path).unwrap();
        db.save(&path).unwrap();
        let entries: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["db.json"], "no .tmp residue: {entries:?}");
        Database::load(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Database::load("/nonexistent/nowhere.json").unwrap_err();
        assert!(matches!(err, crate::DbError::Io(_)));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            Database::from_json("{not json"),
            Err(crate::DbError::Io(_))
        ));
    }

    #[test]
    fn journal_replays_rows_appended_after_snapshot() {
        let db = sample();
        let path = tmpdir("journal").join("db.json");
        db.save(&path).unwrap();
        let mut journal = Journal::open(&path).unwrap();
        journal
            .append("t", &["c".into(), 3.into(), Value::Null])
            .unwrap();
        journal
            .append("t", &["d".into(), 4.into(), Value::Null])
            .unwrap();
        let restored = Database::load(&path).unwrap();
        assert_eq!(restored.select(Select::from("t")).unwrap().len(), 4);
    }

    #[test]
    fn journal_replay_is_idempotent_after_snapshot() {
        let mut db = sample();
        let path = tmpdir("idempotent").join("db.json");
        db.save(&path).unwrap();
        let mut journal = Journal::open(&path).unwrap();
        journal
            .append("t", &["c".into(), 3.into(), Value::Null])
            .unwrap();
        // Snapshot now also contains row c (crash happened between rename
        // and truncate): replay must skip the duplicate.
        db.insert(Insert::into("t", vec!["c".into(), 3.into(), Value::Null]))
            .unwrap();
        db.save(&path).unwrap();
        let restored = Database::load(&path).unwrap();
        assert_eq!(restored.select(Select::from("t")).unwrap().len(), 3);
    }

    #[test]
    fn torn_final_journal_line_is_ignored() {
        let db = sample();
        let path = tmpdir("torn").join("db.json");
        db.save(&path).unwrap();
        let mut journal = Journal::open(&path).unwrap();
        journal
            .append("t", &["c".into(), 3.into(), Value::Null])
            .unwrap();
        // Simulate a crash mid-append: half a JSON line at the end.
        let jp = journal_path(&path);
        let mut text = fs::read_to_string(&jp).unwrap();
        text.push_str("{\"table\":\"t\",\"row\":[");
        fs::write(&jp, text).unwrap();
        let restored = Database::load(&path).unwrap();
        assert_eq!(restored.select(Select::from("t")).unwrap().len(), 3);
    }

    #[test]
    fn corrupt_middle_journal_line_is_an_error() {
        let db = sample();
        let path = tmpdir("corrupt").join("db.json");
        db.save(&path).unwrap();
        let jp = journal_path(&path);
        fs::write(&jp, "garbage\n{\"table\":\"t\",\"row\":[\"c\",3,null]}\n").unwrap();
        assert!(matches!(Database::load(&path), Err(DbError::Io(_))));
    }

    #[test]
    fn journal_truncate_empties_file() {
        let path = tmpdir("truncate").join("db.json");
        sample().save(&path).unwrap();
        let mut journal = Journal::open(&path).unwrap();
        journal
            .append("t", &["c".into(), 3.into(), Value::Null])
            .unwrap();
        journal.truncate().unwrap();
        assert_eq!(fs::metadata(journal.path()).unwrap().len(), 0);
        assert_eq!(
            Database::load(&path)
                .unwrap()
                .select(Select::from("t"))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn journal_bytes_scale_linearly_not_quadratically() {
        // The streaming-persistence guarantee: appending n rows writes
        // O(n) journal bytes total, unlike n full snapshots (O(n^2)).
        let db = sample();
        let path = tmpdir("linear").join("db.json");
        db.save(&path).unwrap();
        let mut journal = Journal::open(&path).unwrap();
        let mut sizes = Vec::new();
        for i in 0..50 {
            journal
                .append(
                    "t",
                    &[
                        format!("row{i:04}").into(),
                        (1000 + i as i64).into(),
                        Value::Null,
                    ],
                )
                .unwrap();
            sizes.push(fs::metadata(journal.path()).unwrap().len());
        }
        let deltas: Vec<u64> = sizes.windows(2).map(|w| w[1] - w[0]).collect();
        let (min, max) = (*deltas.iter().min().unwrap(), *deltas.iter().max().unwrap());
        assert_eq!(min, max, "every append writes the same number of bytes");
        let restored = Database::load(&path).unwrap();
        assert_eq!(restored.select(Select::from("t")).unwrap().len(), 52);
    }
}
