//! Persistence: save and load the whole database as JSON.
//!
//! The GOOFI paper stores all tool data in a portable SQL database so that
//! campaigns survive host restarts and can be moved between host platforms;
//! JSON on disk is our portable equivalent.

use crate::database::Database;
use crate::error::DbError;
use std::fs;
use std::path::Path;

impl Database {
    /// Serialises the database to a JSON string.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] if serialisation fails (it cannot for well-formed
    /// databases; non-finite floats serialise as `null` and will load back
    /// as NULL).
    pub fn to_json(&self) -> Result<String, DbError> {
        serde_json::to_string(self).map_err(|e| DbError::Io(e.to_string()))
    }

    /// Restores a database from [`Database::to_json`] output. Indexes are
    /// rebuilt from row data.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on malformed input.
    pub fn from_json(json: &str) -> Result<Database, DbError> {
        let mut db: Database =
            serde_json::from_str(json).map_err(|e| DbError::Io(e.to_string()))?;
        db.rebuild_all_indexes();
        Ok(db)
    }

    /// Saves the database to a file.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        let json = self.to_json()?;
        fs::write(path.as_ref(), json).map_err(|e| DbError::Io(e.to_string()))
    }

    /// Loads a database from a file written by [`Database::save`].
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Database, DbError> {
        let json = fs::read_to_string(path.as_ref()).map_err(|e| DbError::Io(e.to_string()))?;
        Database::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Insert, Select};
    use crate::schema::{Column, TableSchema};
    use crate::value::{Value, ValueType};

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    Column::new("id", ValueType::Text).primary_key(),
                    Column::new("v", ValueType::Integer),
                    Column::new("b", ValueType::Blob),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert(Insert::into(
            "t",
            vec!["a".into(), 1.into(), vec![1u8, 2].into()],
        ))
        .unwrap();
        db.insert(Insert::into("t", vec!["b".into(), Value::Null, Value::Null]))
            .unwrap();
        db
    }

    #[test]
    fn json_roundtrip_preserves_rows_and_constraints() {
        let db = sample();
        let json = db.to_json().unwrap();
        let mut restored = Database::from_json(&json).unwrap();
        let rs = restored.query("SELECT id, v FROM t ORDER BY id").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Text("a".into()));
        // Unique index must be live after restore.
        let err = restored
            .insert(Insert::into("t", vec!["a".into(), 9.into(), Value::Null]))
            .unwrap_err();
        assert!(matches!(err, crate::DbError::UniqueViolation { .. }));
    }

    #[test]
    fn file_roundtrip() {
        let db = sample();
        let dir = std::env::temp_dir().join("goofi_db_persist_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        let restored = Database::load(&path).unwrap();
        assert_eq!(
            restored.select(Select::from("t")).unwrap().len(),
            db.select(Select::from("t")).unwrap().len()
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Database::load("/nonexistent/nowhere.json").unwrap_err();
        assert!(matches!(err, crate::DbError::Io(_)));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            Database::from_json("{not json"),
            Err(crate::DbError::Io(_))
        ));
    }
}
