//! The cyclic control workload: a fixed-point PID controller.
//!
//! This is the paper's "program ... executed as an infinite loop" whose
//! iterations exchange data with the environment simulator; the companion
//! paper [12] ran a control algorithm in exactly this harness. Per
//! iteration the target reads `[setpoint, measurement]` from
//! [`crate::IO_IN_ADDR`], computes a PID control signal in Q8 fixed point,
//! writes it to [`crate::IO_OUT_ADDR`] and executes `sync`.

use crate::{ResultSpec, Workload, WorkloadKind, IO_IN_ADDR, IO_OUT_ADDR};
use thor_rd::asm::assemble;

/// PID gains, in 1/256 (Q8) units: the control law is
/// `u = (kp*err + ki*integ + kd*deriv) >> 8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PidGains {
    /// Proportional gain (Q8).
    pub kp: i16,
    /// Integral gain (Q8).
    pub ki: i16,
    /// Derivative gain (Q8).
    pub kd: i16,
}

impl Default for PidGains {
    /// Gains tuned for [`goofi_envsim::DcMotorEnv`]: stable, converges in
    /// under ~200 iterations.
    fn default() -> Self {
        PidGains {
            kp: 400,
            ki: 16,
            kd: 64,
        }
    }
}

/// Controller state mirrored by the host oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PidState {
    /// Accumulated (clamped) integral term.
    pub integ: i32,
    /// Previous error, for the derivative term.
    pub prev_err: i32,
}

/// Integral clamp magnitude (matches the workload's `li32` constants).
const INTEG_CLAMP: i32 = 32768;

/// Host oracle: one PID step with exactly the target's integer semantics.
/// Returns the control signal and updates `state`.
pub fn pid_host_step(state: &mut PidState, gains: PidGains, setpoint: i32, meas: i32) -> i32 {
    let err = setpoint.wrapping_sub(meas);
    state.integ = state
        .integ
        .saturating_add(err)
        .clamp(-INTEG_CLAMP, INTEG_CLAMP);
    let deriv = err.wrapping_sub(state.prev_err);
    state.prev_err = err;
    let u = (gains.kp as i32).wrapping_mul(err)
        + (gains.ki as i32).wrapping_mul(state.integ)
        + (gains.kd as i32).wrapping_mul(deriv);
    u >> 8
}

/// Builds the cyclic PID workload.
pub fn pid_workload(gains: PidGains, max_iterations: u32) -> Workload {
    let source = format!(
        "; fixed-point PID controller (Q8)\n\
         \x20       li32 r8, 0x{in_addr:x}    ; IN: [setpoint, meas]\n\
         \x20       li32 r9, 0x{out_addr:x}   ; OUT: [u]\n\
         \x20       la   r10, state\n\
         loop:   ld   r1, 0(r8)       ; setpoint\n\
         \x20       ld   r2, 4(r8)       ; measurement\n\
         \x20       sub  r3, r1, r2      ; err\n\
         \x20       ld   r4, 0(r10)      ; integ\n\
         \x20       add  r4, r4, r3\n\
         \x20       li32 r11, {clamp}\n\
         \x20       cmp  r4, r11\n\
         \x20       ble  okhi\n\
         \x20       or   r4, r11, r11\n\
         okhi:   li32 r12, -{clamp}\n\
         \x20       cmp  r4, r12\n\
         \x20       bge  oklo\n\
         \x20       or   r4, r12, r12\n\
         oklo:   st   r4, 0(r10)\n\
         \x20       ld   r5, 4(r10)      ; prev_err\n\
         \x20       sub  r6, r3, r5      ; deriv\n\
         \x20       st   r3, 4(r10)\n\
         \x20       li   r7, {kp}\n\
         \x20       mul  r7, r7, r3\n\
         \x20       li   r11, {ki}\n\
         \x20       mul  r11, r11, r4\n\
         \x20       add  r7, r7, r11\n\
         \x20       li   r12, {kd}\n\
         \x20       mul  r12, r12, r6\n\
         \x20       add  r7, r7, r12\n\
         \x20       li   r11, 8\n\
         \x20       sra  r7, r7, r11     ; u = total >> 8\n\
         \x20       st   r7, 0(r9)\n\
         \x20       sync\n\
         \x20       jmp  loop\n\
         \x20       .org 0x4000\n\
         state:  .word 0, 0\n",
        in_addr = IO_IN_ADDR,
        out_addr = IO_OUT_ADDR,
        clamp = INTEG_CLAMP,
        kp = gains.kp,
        ki = gains.ki,
        kd = gains.kd,
    );
    let program = assemble(&source).expect("pid workload must assemble");
    Workload {
        name: format!("pid-kp{}-ki{}-kd{}", gains.kp, gains.ki, gains.kd),
        source,
        program,
        kind: WorkloadKind::Cyclic {
            num_inputs: 2,
            num_outputs: 1,
            max_iterations,
        },
        result: ResultSpec {
            addr: 0x4000,
            len: 2,
            expected: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goofi_envsim::{DcMotorEnv, Environment, SCALE};
    use thor_rd::{DebugEvent, MachineConfig, TestCard};

    /// Drives the cyclic workload against the plant the way a target
    /// adapter does: run to `sync`, read outputs, exchange, write inputs.
    fn run_closed_loop(iterations: u32, setpoint: i32) -> (DcMotorEnv, TestCard) {
        let w = pid_workload(PidGains::default(), iterations);
        let mut card = TestCard::new(MachineConfig::default());
        card.download(&w.program).unwrap();
        let mut env = DcMotorEnv::new(setpoint);
        // Stage initial inputs (iteration 0 reads before the first sync).
        card.write_memory(IO_IN_ADDR, setpoint as u32).unwrap();
        card.write_memory(IO_IN_ADDR + 4, 0).unwrap();
        for _ in 0..iterations {
            match card.run(1_000_000) {
                DebugEvent::IterationSync => {}
                other => panic!("unexpected event {other:?}"),
            }
            let u = card.read_memory(IO_OUT_ADDR).unwrap() as i32;
            let inputs = env.exchange(&[u]);
            card.write_memory(IO_IN_ADDR, inputs[0] as u32).unwrap();
            card.write_memory(IO_IN_ADDR + 4, inputs[1] as u32).unwrap();
        }
        (env, card)
    }

    #[test]
    fn pid_converges_on_target_cpu() {
        let setpoint = 5 * SCALE;
        let (env, _) = run_closed_loop(300, setpoint);
        let err = (env.speed() - setpoint).abs();
        assert!(
            err <= SCALE / 8,
            "speed {} did not converge to {} (err {})",
            env.speed(),
            setpoint,
            err
        );
    }

    #[test]
    fn target_pid_matches_host_oracle() {
        // Run the same trajectory on the host oracle and compare control
        // signals step by step.
        let setpoint = 3 * SCALE;
        let iterations = 40;
        let w = pid_workload(PidGains::default(), iterations);
        let mut card = TestCard::new(MachineConfig::default());
        card.download(&w.program).unwrap();
        let mut env = DcMotorEnv::new(setpoint);
        let mut host_env = DcMotorEnv::new(setpoint);
        let mut host_state = PidState::default();
        let (mut sp, mut meas) = (setpoint, 0);
        card.write_memory(IO_IN_ADDR, sp as u32).unwrap();
        card.write_memory(IO_IN_ADDR + 4, meas as u32).unwrap();
        for i in 0..iterations {
            assert_eq!(card.run(1_000_000), DebugEvent::IterationSync);
            let u_target = card.read_memory(IO_OUT_ADDR).unwrap() as i32;
            let u_host = pid_host_step(&mut host_state, PidGains::default(), sp, meas);
            assert_eq!(u_target, u_host, "control mismatch at iteration {i}");
            let inputs = env.exchange(&[u_target]);
            host_env.exchange(&[u_host]);
            sp = inputs[0];
            meas = inputs[1];
            card.write_memory(IO_IN_ADDR, sp as u32).unwrap();
            card.write_memory(IO_IN_ADDR + 4, meas as u32).unwrap();
        }
        assert_eq!(env.history(), host_env.history());
    }

    #[test]
    fn host_oracle_clamps_integral() {
        let mut state = PidState::default();
        for _ in 0..100 {
            pid_host_step(&mut state, PidGains::default(), 1_000_000, 0);
        }
        assert_eq!(state.integ, INTEG_CLAMP);
    }

    #[test]
    fn workload_is_cyclic_with_right_dimensions() {
        let w = pid_workload(PidGains::default(), 50);
        match w.kind {
            WorkloadKind::Cyclic {
                num_inputs,
                num_outputs,
                max_iterations,
            } => {
                assert_eq!(num_inputs, 2);
                assert_eq!(num_outputs, 1);
                assert_eq!(max_iterations, 50);
            }
            other => panic!("expected cyclic, got {other:?}"),
        }
    }
}
