//! # goofi-workloads — target workloads with result oracles
//!
//! The paper's campaigns run workloads on the target: batch programs that
//! terminate by themselves, and cyclic control programs "executed as an
//! infinite loop" exchanging data with an environment simulator each
//! iteration (Section 3.2). This crate bundles both kinds as Thor RD
//! assembly, assembled at construction time, together with *host oracles* —
//! Rust reimplementations used to validate the workload and to know the
//! golden result independent of the target.
//!
//! Bundled workloads: selection sort, matrix multiply, CRC-32, Fibonacci
//! (batch) and a fixed-point PID controller (cyclic).
//!
//! # Examples
//!
//! ```
//! use goofi_workloads::{sort_workload, Workload};
//! use thor_rd::{DebugEvent, MachineConfig, TestCard};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = sort_workload(16, 42);
//! let mut card = TestCard::new(MachineConfig::default());
//! card.download(&w.program)?;
//! assert_eq!(card.run(10_000_000), DebugEvent::Halted);
//! let result = card.read_memory_block(w.result.addr, w.result.len)?;
//! assert_eq!(result, w.result.expected);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batch;
mod control;

pub use batch::{
    crc32_host, crc32_workload, fibonacci_host, fibonacci_workload, matmul_host, matmul_workload,
    sort_workload,
};
pub use control::{pid_host_step, pid_workload, PidGains, PidState};

use thor_rd::Program;

/// Byte address where cyclic workloads read environment inputs.
pub const IO_IN_ADDR: u32 = 0x7f00;
/// Byte address where cyclic workloads write environment outputs.
pub const IO_OUT_ADDR: u32 = 0x7f80;

/// How a workload terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Runs to `halt` by itself.
    Batch,
    /// Runs as an infinite loop with a `sync` per iteration; the campaign
    /// terminates it after `max_iterations` iterations (paper: "the user
    /// must specify the maximum number of iterations").
    Cyclic {
        /// Words the environment writes into [`IO_IN_ADDR`].
        num_inputs: usize,
        /// Words the target writes at [`IO_OUT_ADDR`].
        num_outputs: usize,
        /// Iterations before the experiment is terminated.
        max_iterations: u32,
    },
}

/// Where a batch workload's result lives and what it should be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSpec {
    /// Byte address of the first result word.
    pub addr: u32,
    /// Number of result words.
    pub len: usize,
    /// Golden values (host-oracle computed).
    pub expected: Vec<u32>,
}

/// A ready-to-download workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Stable name (stored in campaign data).
    pub name: String,
    /// Assembly source (what pre-runtime SWIFI corrupts is its image).
    pub source: String,
    /// The assembled image.
    pub program: Program,
    /// Termination behaviour.
    pub kind: WorkloadKind,
    /// Result location and golden values. For cyclic workloads this is the
    /// controller state snapshot, with `expected` empty (the oracle is the
    /// environment trajectory instead).
    pub result: ResultSpec,
}

impl Workload {
    /// Every bundled workload, with small default parameters — handy for
    /// campaign setup UIs and tests.
    pub fn all_default() -> Vec<Workload> {
        vec![
            sort_workload(16, 7),
            matmul_workload(4, 3),
            crc32_workload(16, 11),
            fibonacci_workload(20),
            pid_workload(PidGains::default(), 50),
        ]
    }
}

/// Resolves a workload by its stable name (as stored in `CampaignData`):
/// `sortN`, `matmulN`, `crc32xN`, `fibN` (seeds fixed at their defaults)
/// and `pid` (default gains, 100 iterations).
///
/// # Examples
///
/// ```
/// use goofi_workloads::workload_by_name;
/// assert!(workload_by_name("sort16").is_some());
/// assert!(workload_by_name("warp-drive").is_none());
/// ```
pub fn workload_by_name(name: &str) -> Option<Workload> {
    if name == "pid" || name.starts_with("pid-") {
        return Some(pid_workload(PidGains::default(), 100));
    }
    if let Some(n) = name.strip_prefix("sort") {
        let n: usize = n.parse().ok()?;
        return (n > 0 && n <= 256).then(|| sort_workload(n, 7));
    }
    if let Some(n) = name.strip_prefix("matmul") {
        let n: usize = n.parse().ok()?;
        return (n > 0 && n <= 16).then(|| matmul_workload(n, 3));
    }
    if let Some(n) = name.strip_prefix("crc32x") {
        let n: usize = n.parse().ok()?;
        return (n > 0 && n <= 256).then(|| crc32_workload(n, 11));
    }
    if let Some(n) = name.strip_prefix("fib") {
        let n: u32 = n.parse().ok()?;
        return (n <= 40).then(|| fibonacci_workload(n));
    }
    None
}

/// Deterministic pseudo-random data generator (host side) used to stage
/// workload input arrays.
pub(crate) fn lcg(seed: u32) -> impl FnMut() -> u32 {
    let mut state = seed.wrapping_mul(2891336453).wrapping_add(123456789);
    move || {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        state >> 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_rd::{DebugEvent, MachineConfig, TestCard};

    /// Every batch workload must produce its oracle result on the target.
    #[test]
    fn all_batch_workloads_match_their_oracles() {
        for w in Workload::all_default() {
            if w.kind != WorkloadKind::Batch {
                continue;
            }
            let mut card = TestCard::new(MachineConfig::default());
            card.download(&w.program).unwrap();
            assert_eq!(
                card.run(100_000_000),
                DebugEvent::Halted,
                "workload {} did not halt",
                w.name
            );
            let got = card.read_memory_block(w.result.addr, w.result.len).unwrap();
            assert_eq!(got, w.result.expected, "workload {} wrong result", w.name);
        }
    }

    #[test]
    fn workload_names_are_unique() {
        let all = Workload::all_default();
        let mut names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = lcg(5);
        let mut b = lcg(5);
        for _ in 0..10 {
            assert_eq!(a(), b());
        }
        let mut c = lcg(6);
        assert_ne!(a(), c());
    }
}
