//! Batch workloads: run to completion and leave a checkable result.

use crate::{lcg, ResultSpec, Workload, WorkloadKind};
use thor_rd::asm::assemble;

/// Selection sort over `n` pseudo-random words (ascending, signed).
///
/// # Panics
///
/// Panics if `n` is 0 or larger than 256 (data-region budget).
pub fn sort_workload(n: usize, seed: u32) -> Workload {
    assert!(n > 0 && n <= 256, "n out of range");
    let mut rng = lcg(seed);
    let data: Vec<i32> = (0..n).map(|_| (rng() % 10_000) as i32).collect();
    let mut expected: Vec<i32> = data.clone();
    expected.sort_unstable();
    let expected: Vec<u32> = expected.into_iter().map(|v| v as u32).collect();

    let words = data
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let source = format!(
        "; selection sort, {n} elements\n\
         \x20       la   r8, array\n\
         \x20       li   r9, {n}\n\
         \x20       li   r1, 0          ; i\n\
         outer:  cmpi r1, {last}\n\
         \x20       bge  done\n\
         \x20       slli r2, r1, 2\n\
         \x20       add  r2, r2, r8     ; &a[i]\n\
         \x20       ld   r3, (r2)       ; min value\n\
         \x20       or   r4, r2, r2     ; min address\n\
         \x20       addi r5, r1, 1      ; j\n\
         inner:  cmp  r5, r9\n\
         \x20       bge  endin\n\
         \x20       slli r6, r5, 2\n\
         \x20       add  r6, r6, r8\n\
         \x20       ld   r7, (r6)\n\
         \x20       cmp  r7, r3\n\
         \x20       bge  skip\n\
         \x20       or   r3, r7, r7\n\
         \x20       or   r4, r6, r6\n\
         skip:   addi r5, r5, 1\n\
         \x20       jmp  inner\n\
         endin:  ld   r7, (r2)\n\
         \x20       st   r3, (r2)\n\
         \x20       st   r7, (r4)\n\
         \x20       addi r1, r1, 1\n\
         \x20       jmp  outer\n\
         done:   halt\n\
         \x20       .org 0x4000\n\
         array:  .word {words}\n",
        last = n - 1,
    );
    let program = assemble(&source).expect("sort workload must assemble");
    Workload {
        name: format!("sort{n}"),
        source,
        program,
        kind: WorkloadKind::Batch,
        result: ResultSpec {
            addr: 0x4000,
            len: n,
            expected,
        },
    }
}

/// Host oracle for [`matmul_workload`]: row-major `n×n` product.
pub fn matmul_host(n: usize, a: &[i32], b: &[i32]) -> Vec<i32> {
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// `n×n` integer matrix multiply with small pseudo-random entries.
///
/// # Panics
///
/// Panics if `n` is 0 or larger than 16.
pub fn matmul_workload(n: usize, seed: u32) -> Workload {
    assert!(n > 0 && n <= 16, "n out of range");
    let mut rng = lcg(seed);
    let a: Vec<i32> = (0..n * n).map(|_| (rng() % 16) as i32).collect();
    let b: Vec<i32> = (0..n * n).map(|_| (rng() % 16) as i32).collect();
    let expected: Vec<u32> = matmul_host(n, &a, &b)
        .into_iter()
        .map(|v| v as u32)
        .collect();

    let fmt = |m: &[i32]| {
        m.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let source = format!(
        "; {n}x{n} matrix multiply, C = A*B\n\
         \x20       la   r8, mata\n\
         \x20       la   r9, matb\n\
         \x20       la   r10, matc\n\
         \x20       li   r1, 0          ; i\n\
         iloop:  cmpi r1, {n}\n\
         \x20       bge  done\n\
         \x20       li   r2, 0          ; j\n\
         jloop:  cmpi r2, {n}\n\
         \x20       bge  iend\n\
         \x20       li   r3, 0          ; k\n\
         \x20       li   r4, 0          ; acc\n\
         kloop:  cmpi r3, {n}\n\
         \x20       bge  kend\n\
         \x20       li   r5, {n}\n\
         \x20       mul  r6, r1, r5     ; i*n\n\
         \x20       add  r6, r6, r3     ; i*n+k\n\
         \x20       slli r6, r6, 2\n\
         \x20       add  r6, r6, r8\n\
         \x20       ld   r6, (r6)       ; a[i][k]\n\
         \x20       mul  r7, r3, r5     ; k*n\n\
         \x20       add  r7, r7, r2\n\
         \x20       slli r7, r7, 2\n\
         \x20       add  r7, r7, r9\n\
         \x20       ld   r7, (r7)       ; b[k][j]\n\
         \x20       mul  r6, r6, r7\n\
         \x20       add  r4, r4, r6\n\
         \x20       addi r3, r3, 1\n\
         \x20       jmp  kloop\n\
         kend:   li   r5, {n}\n\
         \x20       mul  r6, r1, r5\n\
         \x20       add  r6, r6, r2\n\
         \x20       slli r6, r6, 2\n\
         \x20       add  r6, r6, r10\n\
         \x20       st   r4, (r6)       ; c[i][j] = acc\n\
         \x20       addi r2, r2, 1\n\
         \x20       jmp  jloop\n\
         iend:   addi r1, r1, 1\n\
         \x20       jmp  iloop\n\
         done:   halt\n\
         \x20       .org 0x4000\n\
         matc:   .space {c_bytes}\n\
         mata:   .word {a_words}\n\
         matb:   .word {b_words}\n",
        c_bytes = n * n * 4,
        a_words = fmt(&a),
        b_words = fmt(&b),
    );
    let program = assemble(&source).expect("matmul workload must assemble");
    Workload {
        name: format!("matmul{n}"),
        source,
        program,
        kind: WorkloadKind::Batch,
        result: ResultSpec {
            addr: 0x4000,
            len: n * n,
            expected,
        },
    }
}

/// Host oracle for [`crc32_workload`]: bitwise CRC-32 (poly `0xEDB88320`)
/// over words, no final inversion.
pub fn crc32_host(words: &[u32]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for w in words {
        crc ^= w;
        for _ in 0..32 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    crc
}

/// CRC-32 over `n` pseudo-random words.
///
/// # Panics
///
/// Panics if `n` is 0 or larger than 256.
pub fn crc32_workload(n: usize, seed: u32) -> Workload {
    assert!(n > 0 && n <= 256, "n out of range");
    let mut rng = lcg(seed);
    let data: Vec<u32> = (0..n).map(|_| rng()).collect();
    let expected = vec![crc32_host(&data)];
    let words = data
        .iter()
        .map(|v| format!("0x{v:x}"))
        .collect::<Vec<_>>()
        .join(", ");
    let source = format!(
        "; CRC-32 over {n} words\n\
         \x20       la   r8, data\n\
         \x20       li   r9, {n}\n\
         \x20       li32 r1, -1          ; crc = 0xffffffff\n\
         \x20       li32 r10, 0xedb88320 ; poly\n\
         \x20       li   r2, 0           ; word index\n\
         wloop:  cmp  r2, r9\n\
         \x20       bge  done\n\
         \x20       slli r3, r2, 2\n\
         \x20       add  r3, r3, r8\n\
         \x20       ld   r3, (r3)\n\
         \x20       xor  r1, r1, r3\n\
         \x20       li   r4, 32          ; bit counter\n\
         bloop:  andi r5, r1, 1\n\
         \x20       li   r6, 1\n\
         \x20       srl  r1, r1, r6\n\
         \x20       cmpi r5, 0\n\
         \x20       beq  nobit\n\
         \x20       xor  r1, r1, r10\n\
         nobit:  addi r4, r4, -1\n\
         \x20       cmpi r4, 0\n\
         \x20       bne  bloop\n\
         \x20       addi r2, r2, 1\n\
         \x20       jmp  wloop\n\
         done:   la   r7, crcout\n\
         \x20       st   r1, (r7)\n\
         \x20       halt\n\
         \x20       .org 0x4000\n\
         crcout: .word 0\n\
         data:   .word {words}\n",
    );
    let program = assemble(&source).expect("crc32 workload must assemble");
    Workload {
        name: format!("crc32x{n}"),
        source,
        program,
        kind: WorkloadKind::Batch,
        result: ResultSpec {
            addr: 0x4000,
            len: 1,
            expected,
        },
    }
}

/// Host oracle for [`fibonacci_workload`].
pub fn fibonacci_host(n: u32) -> u32 {
    let (mut a, mut b) = (0u32, 1u32);
    for _ in 0..n {
        let next = a.wrapping_add(b);
        a = b;
        b = next;
    }
    a
}

/// Iterative Fibonacci: computes `fib(n)`.
///
/// # Panics
///
/// Panics if `n > 40` (the target traps on signed overflow beyond that).
pub fn fibonacci_workload(n: u32) -> Workload {
    assert!(n <= 40, "n too large for 32-bit signed arithmetic");
    let expected = vec![fibonacci_host(n)];
    let source = format!(
        "; fib({n})\n\
         \x20       li   r1, 0           ; a\n\
         \x20       li   r2, 1           ; b\n\
         \x20       li   r3, {n}         ; counter\n\
         floop:  cmpi r3, 0\n\
         \x20       beq  done\n\
         \x20       add  r4, r1, r2\n\
         \x20       or   r1, r2, r2\n\
         \x20       or   r2, r4, r4\n\
         \x20       addi r3, r3, -1\n\
         \x20       jmp  floop\n\
         done:   la   r5, fibout\n\
         \x20       st   r1, (r5)\n\
         \x20       halt\n\
         \x20       .org 0x4000\n\
         fibout: .word 0\n",
    );
    let program = assemble(&source).expect("fibonacci workload must assemble");
    Workload {
        name: format!("fib{n}"),
        source,
        program,
        kind: WorkloadKind::Batch,
        result: ResultSpec {
            addr: 0x4000,
            len: 1,
            expected,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_rd::{DebugEvent, MachineConfig, TestCard};

    fn run_batch(w: &Workload) -> Vec<u32> {
        let mut card = TestCard::new(MachineConfig::default());
        card.download(&w.program).unwrap();
        assert_eq!(card.run(100_000_000), DebugEvent::Halted, "{}", w.name);
        card.read_memory_block(w.result.addr, w.result.len).unwrap()
    }

    #[test]
    fn sort_sorts() {
        let w = sort_workload(12, 99);
        let got = run_batch(&w);
        assert_eq!(got, w.result.expected);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }

    #[test]
    fn sort_of_one_element_is_trivial() {
        let w = sort_workload(1, 3);
        assert_eq!(run_batch(&w), w.result.expected);
    }

    #[test]
    fn matmul_matches_host_oracle() {
        for n in [1, 2, 4] {
            let w = matmul_workload(n, 5);
            assert_eq!(run_batch(&w), w.result.expected, "n={n}");
        }
    }

    #[test]
    fn crc32_matches_host_oracle() {
        let w = crc32_workload(8, 1);
        assert_eq!(run_batch(&w), w.result.expected);
    }

    #[test]
    fn crc32_host_known_value() {
        // CRC of a single zero word: 32 shifts of all-ones register.
        let crc = crc32_host(&[0]);
        assert_ne!(crc, 0);
        assert_eq!(crc, crc32_host(&[0]));
        assert_ne!(crc32_host(&[1]), crc32_host(&[2]));
    }

    #[test]
    fn fibonacci_matches_host_oracle() {
        let w = fibonacci_workload(20);
        assert_eq!(run_batch(&w), vec![6765]);
        assert_eq!(fibonacci_host(0), 0);
        assert_eq!(fibonacci_host(1), 1);
        assert_eq!(fibonacci_host(10), 55);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = sort_workload(8, 1);
        let b = sort_workload(8, 2);
        assert_ne!(a.result.expected, b.result.expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_sort_rejected() {
        sort_workload(10_000, 1);
    }
}
