//! `TargetSystemInterface` adapter for the StackVM target.
//!
//! The genericity demonstration (experiment E5): a structurally different
//! machine — Harvard stack architecture, named debug-port fields instead of
//! shift chains — driven by the *same* fault-injection algorithms. The
//! debug port is presented to the framework as a single scan chain named
//! `"debug"`; instruction memory is presented as the SWIFI memory surface
//! (addressed in bytes, 4 bytes per program word).

use goofi_core::{
    ChainInfo, FieldInfo, GoofiError, MemoryRegion, MemoryRole, Result, StateVector, TargetEvent,
    TargetSnapshot, TargetSystemConfig, TargetSystemInterface, TraceStep,
};
use goofi_stackvm::{Op, StackVm, VmError, VmEvent, VmLoc};
use goofi_telemetry::names;

/// Word address in VM data memory → SWIFI byte address.
pub(crate) const DATA_BASE: u32 = 0x1_0000;

/// Maps a VM location to the architectural name used in traces and
/// campaign fault records (debug-chain field names, `MEM[..]` for data).
pub(crate) fn vm_loc_name(loc: VmLoc) -> String {
    match loc {
        VmLoc::Data(a) => goofi_core::mem_loc_name(DATA_BASE + a * 4),
        other => other.to_string(),
    }
}

/// Default per-experiment step budget.
pub const DEFAULT_STEP_BUDGET: u64 = 1_000_000;

/// Mechanism names for the StackVM's error detectors.
fn mechanism_name(e: &VmError) -> &'static str {
    match e {
        VmError::StackOverflow | VmError::StackUnderflow => "stack-bounds",
        VmError::CallStackFault => "call-stack",
        VmError::IllegalOpcode { .. } => "illegal-opcode",
        VmError::PcOutOfRange { .. } => "pc-range",
        VmError::DataOutOfRange { .. } => "data-range",
    }
}

/// A StackVM workload: the program plus its result location.
#[derive(Debug, Clone)]
pub struct StackProgram {
    /// Program name.
    pub name: String,
    /// The instructions.
    pub ops: Vec<Op>,
    /// Data addresses holding the result, read back as outputs.
    pub result_addrs: Vec<u32>,
}

impl StackProgram {
    /// The bundled demo workload: sums 1..=n into `data[1]`.
    pub fn sum(n: i32) -> StackProgram {
        StackProgram {
            name: format!("sum{n}"),
            ops: vec![
                Op::Push(n),
                Op::Store(0),
                Op::Push(0),
                Op::Store(1),
                Op::Load(0), // 4: loop head
                Op::Jz(15),
                Op::Load(1),
                Op::Load(0),
                Op::Add,
                Op::Store(1),
                Op::Load(0),
                Op::Push(1),
                Op::Sub,
                Op::Store(0),
                Op::Jmp(4),
                Op::Halt, // 15
            ],
            result_addrs: vec![1],
        }
    }
}

/// The StackVM target adapter.
pub struct StackVmTarget {
    name: String,
    vm: StackVm,
    program: StackProgram,
    step_budget: u64,
    data_words: usize,
}

impl StackVmTarget {
    /// Creates an adapter with `data_words` words of VM data memory.
    pub fn new(name: impl Into<String>, program: StackProgram, data_words: usize) -> Self {
        StackVmTarget {
            name: name.into(),
            vm: StackVm::new(data_words),
            program,
            step_budget: DEFAULT_STEP_BUDGET,
            data_words,
        }
    }

    /// Overrides the step budget.
    pub fn set_step_budget(&mut self, budget: u64) {
        self.step_budget = budget;
    }

    fn event(&self, ev: VmEvent) -> TargetEvent {
        match ev {
            VmEvent::Halted => TargetEvent::Halted,
            VmEvent::Sync => TargetEvent::IterationsDone, // no env for this target
            VmEvent::Error(e) => TargetEvent::Detected {
                mechanism: mechanism_name(&e).to_owned(),
                detail: e.to_string(),
            },
            VmEvent::TimedOut => TargetEvent::TimedOut,
            VmEvent::Breakpoint { steps, .. } => TargetEvent::BreakpointHit { time: steps },
        }
    }
}

impl TargetSystemInterface for StackVmTarget {
    fn target_name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> TargetSystemConfig {
        let mut offset = 0;
        let fields = self
            .vm
            .debug_fields()
            .into_iter()
            .map(|f| {
                let info = FieldInfo {
                    name: f.name,
                    offset,
                    width: f.width,
                    writable: f.writable,
                };
                offset += f.width;
                info
            })
            .collect::<Vec<_>>();
        TargetSystemConfig {
            name: self.name.clone(),
            description: format!("StackVM, program `{}`", self.program.name),
            chains: vec![ChainInfo {
                name: "debug".into(),
                width: offset,
                fields,
            }],
            memory: vec![
                MemoryRegion {
                    start: 0,
                    len: (self.program.ops.len() * 4) as u32,
                    role: MemoryRole::Code,
                },
                MemoryRegion {
                    start: DATA_BASE,
                    len: (self.data_words * 4) as u32,
                    role: MemoryRole::Data,
                },
            ],
        }
    }

    fn init_test_card(&mut self) -> Result<()> {
        self.vm.reset();
        Ok(())
    }

    fn load_workload(&mut self) -> Result<()> {
        self.vm.load(&self.program.ops);
        Ok(())
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        for (i, w) in data.iter().enumerate() {
            let a = addr + (i as u32) * 4;
            let ok = if a >= DATA_BASE {
                self.vm.set_data((a - DATA_BASE) / 4, *w as i32)
            } else {
                self.vm.set_program_word((a / 4) as usize, *w)
            };
            if !ok {
                return Err(GoofiError::Target(format!("bad address 0x{a:x}")));
            }
        }
        Ok(())
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        (0..len)
            .map(|i| {
                let a = addr + (i as u32) * 4;
                let v = if a >= DATA_BASE {
                    self.vm.data((a - DATA_BASE) / 4).map(|v| v as u32)
                } else {
                    self.vm.program_word((a / 4) as usize)
                };
                v.ok_or_else(|| GoofiError::Target(format!("bad address 0x{a:x}")))
            })
            .collect()
    }

    fn set_breakpoint(&mut self, time: u64) -> Result<()> {
        self.vm.set_breakpoint_steps(time);
        Ok(())
    }

    fn run_workload(&mut self) -> Result<()> {
        Ok(())
    }

    fn wait_for_breakpoint(&mut self) -> Result<TargetEvent> {
        let ev = self.vm.run(self.step_budget);
        Ok(self.event(ev))
    }

    fn wait_for_termination(&mut self) -> Result<TargetEvent> {
        loop {
            let ev = self.vm.run(self.step_budget);
            match ev {
                // Stray breakpoints are ignored on the way to termination.
                VmEvent::Breakpoint { .. } => continue,
                other => return Ok(self.event(other)),
            }
        }
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<StateVector> {
        if chain != "debug" {
            return Err(GoofiError::Target(format!("no scan chain `{chain}`")));
        }
        let _s = tracing::span(names::BLOCK_READ_SCAN_CHAIN);
        let fields = self.vm.debug_fields();
        let width: usize = fields.iter().map(|f| f.width).sum();
        let mut bits = StateVector::zeros(width);
        let mut offset = 0;
        for f in fields {
            let v = self
                .vm
                .read_field(&f.name)
                .ok_or_else(|| GoofiError::Target(format!("unreadable field {}", f.name)))?;
            for b in 0..f.width {
                if v & (1u64 << b) != 0 {
                    bits.set(offset + b, true);
                }
            }
            offset += f.width;
        }
        Ok(bits)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &StateVector) -> Result<()> {
        if chain != "debug" {
            return Err(GoofiError::Target(format!("no scan chain `{chain}`")));
        }
        let _s = tracing::span(names::BLOCK_WRITE_SCAN_CHAIN);
        let mut offset = 0;
        for f in self.vm.debug_fields() {
            if f.writable {
                let mut v = 0u64;
                for b in 0..f.width {
                    if bits.get(offset + b) {
                        v |= 1u64 << b;
                    }
                }
                self.vm.write_field(&f.name, v);
            }
            offset += f.width;
        }
        Ok(())
    }

    fn observe_state(&mut self) -> Result<StateVector> {
        // Debug chain plus all data memory.
        let chain = self.read_scan_chain("debug")?;
        let mut bytes = chain.as_bytes().to_vec();
        let mut len = bytes.len() * 8;
        for i in 0..self.data_words {
            let v = self.vm.data(i as u32).unwrap_or(0);
            bytes.extend((v as u32).to_le_bytes());
            len += 32;
        }
        Ok(StateVector::from_bytes(bytes, len))
    }

    fn read_outputs(&mut self) -> Result<Vec<u32>> {
        self.program
            .result_addrs
            .iter()
            .map(|a| {
                self.vm
                    .data(*a)
                    .map(|v| v as u32)
                    .ok_or_else(|| GoofiError::Target(format!("bad result address {a}")))
            })
            .collect()
    }

    fn step_instruction(&mut self) -> Result<Option<TargetEvent>> {
        match self.vm.step() {
            Ok(Some(VmEvent::Halted)) => Ok(Some(TargetEvent::Halted)),
            Ok(Some(_)) | Ok(None) => Ok(None),
            Err(e) => Ok(Some(TargetEvent::Detected {
                mechanism: mechanism_name(&e).to_owned(),
                detail: e.to_string(),
            })),
        }
    }

    fn static_analysis(&mut self, horizon: u64) -> Result<goofi_core::StaticAnalysis> {
        goofi_analysis::analyze_stackvm_program(
            &self.program.ops,
            self.data_words,
            DATA_BASE,
            horizon,
        )
        .ok_or_else(|| self.unsupported("staticAnalysis"))
    }

    fn collect_trace(&mut self) -> Result<Vec<TraceStep>> {
        // Per-op def/use sets come from the shared `Op::effect` table (the
        // same one the static analyzer uses), evaluated at the concrete
        // stack configuration before each step. `PC`/`STEPS` are left out
        // so faults there stay unknown locations (never pruned).
        let mut trace = Vec::new();
        for _ in 0..self.step_budget {
            let time = self.vm.steps();
            let fx = self
                .vm
                .read_field("PC")
                .and_then(|pc| self.vm.program_word(pc as usize))
                .and_then(Op::decode)
                .and_then(|op| {
                    let sp = self.vm.read_field("SP")? as u8;
                    let csp = self.vm.read_field("CSP")? as u8;
                    op.effect(sp, csp)
                })
                .unwrap_or_default();
            match self.vm.step() {
                Ok(Some(VmEvent::Halted)) => break,
                Ok(_) => trace.push(TraceStep {
                    time,
                    reads: fx.reads.iter().map(|l| vm_loc_name(*l)).collect(),
                    writes: fx.writes.iter().map(|l| vm_loc_name(*l)).collect(),
                    is_branch: fx.is_branch,
                    is_call: fx.is_call,
                }),
                Err(e) => {
                    return Err(GoofiError::Target(format!(
                        "reference trace run hit an error: {e}"
                    )))
                }
            }
        }
        Ok(trace)
    }

    fn instructions_retired(&mut self) -> Result<u64> {
        Ok(self.vm.steps())
    }

    fn iterations_completed(&mut self) -> Result<u32> {
        Ok(0)
    }

    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        // The whole VM (data, stacks, pc, step count, armed breakpoints,
        // latched errors) lives in one plain struct: a clone is a snapshot.
        let _s = tracing::span(names::BLOCK_SNAPSHOT);
        Ok(TargetSnapshot::new(self.vm.clone()))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        let _s = tracing::span(names::BLOCK_RESTORE);
        let vm = snapshot
            .downcast_ref::<StackVm>()
            .ok_or_else(|| GoofiError::Target("snapshot is not a StackVM snapshot".into()))?;
        self.vm = vm.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goofi_core::{
        reference_run, Campaign, CampaignRunner, FaultModel, LocationSelector, Technique,
    };

    fn target() -> StackVmTarget {
        StackVmTarget::new("stackvm", StackProgram::sum(10), 8)
    }

    fn campaign(technique: Technique, n: usize) -> Campaign {
        let selector = match technique {
            Technique::Scifi => LocationSelector::Chain {
                chain: "debug".into(),
                field: None,
            },
            _ => LocationSelector::Memory {
                start: 0,
                words: 16,
            },
        };
        Campaign::builder("svm-c", "stackvm", "sum10")
            .technique(technique)
            .select(selector)
            .fault_model(FaultModel::BitFlip)
            .window(0, 60)
            .experiments(n)
            .seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn reference_computes_sum() {
        let mut t = target();
        let run = reference_run(&mut t, &campaign(Technique::Scifi, 1)).unwrap();
        assert_eq!(run.termination, TargetEvent::Halted);
        assert_eq!(run.outputs, vec![55]);
    }

    #[test]
    fn describe_exposes_debug_chain_with_read_only_steps() {
        let t = target();
        let cfg = t.describe();
        let chain = cfg.chain("debug").unwrap();
        assert!(chain.field("S0").unwrap().writable);
        assert!(!chain.field("STEPS").unwrap().writable);
    }

    #[test]
    fn scifi_campaign_runs_against_stackvm() {
        let mut t = target();
        let result = CampaignRunner::new(&mut t, &campaign(Technique::Scifi, 40))
            .run()
            .unwrap();
        assert_eq!(result.runs.len(), 40);
        let s = &result.stats;
        // Something must be effective and something must be benign in a
        // 40-shot campaign over the whole debug chain.
        assert!(s.total() == 40);
        assert!(s.effective() + s.non_effective() == 40);
    }

    #[test]
    fn swifi_campaign_runs_against_stackvm() {
        let mut t = target();
        let result = CampaignRunner::new(&mut t, &campaign(Technique::SwifiPreRuntime, 30))
            .run()
            .unwrap();
        assert_eq!(result.runs.len(), 30);
        // Corrupting instruction words must trip the illegal-opcode or
        // range detectors at least once in 30 experiments.
        assert!(
            result.stats.detected_total() > 0,
            "{}",
            result.stats.report()
        );
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let mut t = target();
        t.init_test_card().unwrap();
        t.load_workload().unwrap();
        t.set_breakpoint(20).unwrap();
        assert_eq!(
            t.wait_for_breakpoint().unwrap(),
            TargetEvent::BreakpointHit { time: 20 }
        );
        let snap = t.snapshot().unwrap();
        assert_eq!(t.wait_for_termination().unwrap(), TargetEvent::Halted);
        let outputs = t.read_outputs().unwrap();
        let state = t.observe_state().unwrap();

        t.restore(&snap).unwrap();
        assert_eq!(t.instructions_retired().unwrap(), 20);
        assert_eq!(t.wait_for_termination().unwrap(), TargetEvent::Halted);
        assert_eq!(t.read_outputs().unwrap(), outputs);
        assert_eq!(t.observe_state().unwrap(), state);
    }

    #[test]
    fn sp_injection_detected_by_stack_bounds() {
        let mut t = target();
        t.init_test_card().unwrap();
        t.load_workload().unwrap();
        t.set_breakpoint(5).unwrap();
        assert!(matches!(
            t.wait_for_breakpoint().unwrap(),
            TargetEvent::BreakpointHit { .. }
        ));
        // Force SP to a wild value through the chain.
        let cfg = t.describe();
        let chain = cfg.chain("debug").unwrap();
        let sp = chain.field("SP").unwrap();
        let mut bits = t.read_scan_chain("debug").unwrap();
        for b in 0..sp.width {
            bits.set(sp.offset + b, true);
        }
        t.write_scan_chain("debug", &bits).unwrap();
        match t.wait_for_termination().unwrap() {
            TargetEvent::Detected { mechanism, .. } => assert_eq!(mechanism, "stack-bounds"),
            other => panic!("expected detection, got {other:?}"),
        }
    }
}
