//! `TargetSystemInterface` adapter for the Thor RD target system.
//!
//! This is the paper's `TargetSystemInterface` subclass for the Thor RD
//! board: it implements the abstract building blocks on top of the
//! [`TestCard`] and handles the per-iteration environment exchange for
//! cyclic workloads (paper Section 3.2).

use goofi_core::{
    mem_loc_name, ChainInfo, FieldInfo, GoofiError, MemoryRegion, MemoryRole, Result, StateVector,
    TargetEvent, TargetSnapshot, TargetSystemConfig, TargetSystemInterface, TraceStep,
};
use goofi_envsim::Environment;
use goofi_telemetry::names;
use goofi_workloads::{Workload, WorkloadKind, IO_IN_ADDR, IO_OUT_ADDR};
use thor_rd::{
    BitVector, CardError, CardSnapshot, DebugEvent, Loc, MachineConfig, StepInfo, TestCard,
};

/// Default per-experiment cycle budget (external time-out).
pub const DEFAULT_CYCLE_BUDGET: u64 = 5_000_000;

/// Cap on reference-trace length, so runaway workloads cannot hang the
/// configuration phase.
const TRACE_CAP: usize = 2_000_000;

/// Words of the data region included in the observable state snapshot
/// (beyond the scan chains): covers every bundled workload's result area.
const OBSERVE_DATA_WORDS: usize = 256;

/// The Thor RD target adapter. One instance drives one simulated board and
/// one workload; campaigns of any technique (SCIFI, pre-runtime or runtime
/// SWIFI) can run against it.
pub struct ThorTarget {
    name: String,
    card: TestCard,
    machine_config: MachineConfig,
    workload: Workload,
    env: Option<Box<dyn Environment + Send>>,
    cycle_budget: u64,
    iterations: u32,
    output_history: Vec<u32>,
}

impl ThorTarget {
    /// Creates an adapter for a batch workload.
    pub fn new(name: impl Into<String>, workload: Workload) -> ThorTarget {
        Self::with_env_opt(name, workload, None)
    }

    /// Creates an adapter for a cyclic workload with its environment
    /// simulator.
    pub fn with_env(
        name: impl Into<String>,
        workload: Workload,
        env: Box<dyn Environment + Send>,
    ) -> ThorTarget {
        Self::with_env_opt(name, workload, Some(env))
    }

    fn with_env_opt(
        name: impl Into<String>,
        workload: Workload,
        env: Option<Box<dyn Environment + Send>>,
    ) -> ThorTarget {
        let machine_config = MachineConfig::default();
        ThorTarget {
            name: name.into(),
            card: TestCard::new(machine_config),
            machine_config,
            workload,
            env,
            cycle_budget: DEFAULT_CYCLE_BUDGET,
            iterations: 0,
            output_history: Vec::new(),
        }
    }

    /// Overrides the per-experiment cycle budget.
    pub fn set_cycle_budget(&mut self, budget: u64) {
        self.cycle_budget = budget;
    }

    /// Toggles the interpreter's predecoded fast path (on by default).
    /// Benches flip it off to measure the predecode speedup against the
    /// plain fetch/decode loop; results are architecturally identical.
    pub fn set_interpreter_fast_path(&mut self, on: bool) {
        self.card.machine_mut().set_predecode(on);
    }

    /// The underlying test card (for tests and ad-hoc inspection).
    pub fn card(&self) -> &TestCard {
        &self.card
    }

    /// The workload this adapter drives.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    fn card_err(e: CardError) -> GoofiError {
        GoofiError::Target(e.to_string())
    }

    /// Exchanges environment data at an iteration boundary: read the
    /// workload's outputs, advance the plant, write the next inputs.
    fn exchange_env(&mut self) -> Result<()> {
        let WorkloadKind::Cyclic {
            num_inputs,
            num_outputs,
            ..
        } = self.workload.kind
        else {
            return Ok(());
        };
        let mut outputs = Vec::with_capacity(num_outputs);
        for i in 0..num_outputs {
            let w = self
                .card
                .read_memory(IO_OUT_ADDR + (i as u32) * 4)
                .map_err(Self::card_err)?;
            outputs.push(w as i32);
        }
        self.output_history
            .extend(outputs.iter().map(|&v| v as u32));
        let env = self
            .env
            .as_mut()
            .ok_or_else(|| GoofiError::Target("cyclic workload without environment".into()))?;
        let inputs = env.exchange(&outputs);
        debug_assert_eq!(inputs.len(), num_inputs);
        for (i, v) in inputs.iter().enumerate() {
            self.card
                .write_memory(IO_IN_ADDR + (i as u32) * 4, *v as u32)
                .map_err(Self::card_err)?;
        }
        Ok(())
    }

    fn remaining_budget(&self) -> u64 {
        self.cycle_budget
            .saturating_sub(self.card.machine().cycles())
    }

    /// The shared run loop behind `wait_for_breakpoint` and
    /// `wait_for_termination`.
    fn run_until(&mut self, stop_at_breakpoint: bool) -> Result<TargetEvent> {
        loop {
            let budget = self.remaining_budget();
            if budget == 0 {
                return Ok(TargetEvent::TimedOut);
            }
            match self.card.run(budget) {
                DebugEvent::Breakpoint { instret, .. } => {
                    if stop_at_breakpoint {
                        return Ok(TargetEvent::BreakpointHit { time: instret });
                    }
                    // Stray breakpoint while running to termination: ignore.
                }
                DebugEvent::Halted => return Ok(TargetEvent::Halted),
                DebugEvent::IterationSync => {
                    self.exchange_env()?;
                    self.iterations += 1;
                    if let WorkloadKind::Cyclic { max_iterations, .. } = self.workload.kind {
                        if self.iterations >= max_iterations {
                            return Ok(TargetEvent::IterationsDone);
                        }
                    }
                }
                DebugEvent::ErrorDetected(e) => {
                    return Ok(TargetEvent::Detected {
                        mechanism: e.mechanism().name().to_owned(),
                        detail: e.to_string(),
                    })
                }
                DebugEvent::TimedOut => return Ok(TargetEvent::TimedOut),
            }
        }
    }

    fn loc_name(loc: &Loc) -> String {
        match loc {
            Loc::Reg(r) => format!("R{r}"),
            Loc::Psw => "PSW".to_owned(),
            Loc::Mem(a) => mem_loc_name(*a),
        }
    }

    fn trace_step(info: &StepInfo, time: u64) -> TraceStep {
        TraceStep {
            time,
            reads: info.reads.iter().map(Self::loc_name).collect(),
            writes: info.writes.iter().map(Self::loc_name).collect(),
            is_branch: info.is_branch,
            is_call: info.is_call,
        }
    }
}

/// The payload behind [`TargetSnapshot`] for [`ThorTarget`]: the full
/// test-card state plus the adapter's own iteration bookkeeping.
struct ThorSnapshot {
    card: CardSnapshot,
    iterations: u32,
    output_history: Vec<u32>,
}

fn to_core_bits(bits: &BitVector) -> StateVector {
    StateVector::from_bytes(bits.to_bytes(), bits.len())
}

fn to_thor_bits(bits: &StateVector) -> BitVector {
    BitVector::from_bytes(bits.as_bytes(), bits.len())
}

impl TargetSystemInterface for ThorTarget {
    fn target_name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> TargetSystemConfig {
        let chains = self
            .card
            .chain_names()
            .into_iter()
            .map(|name| {
                let chain = self.card.chain(name).expect("listed chain exists");
                ChainInfo {
                    name: chain.name().to_owned(),
                    width: chain.width(),
                    fields: chain
                        .fields()
                        .iter()
                        .map(|f| FieldInfo {
                            name: f.name.clone(),
                            offset: f.offset,
                            width: f.field.width(),
                            writable: f.field.is_writable(),
                        })
                        .collect(),
                }
            })
            .collect();
        let map = self.machine_config.memory;
        TargetSystemConfig {
            name: self.name.clone(),
            description: format!(
                "Thor RD board, workload `{}` ({} bytes memory)",
                self.workload.name, map.size
            ),
            chains,
            memory: vec![
                MemoryRegion {
                    start: 0,
                    len: map.code_end,
                    role: MemoryRole::Code,
                },
                MemoryRegion {
                    start: map.code_end,
                    len: map.size - map.code_end,
                    role: MemoryRole::Data,
                },
            ],
        }
    }

    fn init_test_card(&mut self) -> Result<()> {
        self.card.init();
        if let Some(env) = self.env.as_mut() {
            env.reset();
        }
        self.iterations = 0;
        self.output_history.clear();
        Ok(())
    }

    fn load_workload(&mut self) -> Result<()> {
        self.card
            .download(&self.workload.program)
            .map_err(Self::card_err)?;
        // Stage iteration-0 inputs for cyclic workloads: the environment's
        // first exchange (with all-zero outputs) happens at download time,
        // identically for reference and fault-injected runs.
        if let WorkloadKind::Cyclic {
            num_inputs,
            num_outputs,
            ..
        } = self.workload.kind
        {
            let env = self
                .env
                .as_mut()
                .ok_or_else(|| GoofiError::Target("cyclic workload without environment".into()))?;
            let inputs = env.exchange(&vec![0; num_outputs]);
            debug_assert_eq!(inputs.len(), num_inputs);
            for (i, v) in inputs.iter().enumerate() {
                self.card
                    .write_memory(IO_IN_ADDR + (i as u32) * 4, *v as u32)
                    .map_err(Self::card_err)?;
            }
        }
        Ok(())
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        for (i, w) in data.iter().enumerate() {
            self.card
                .write_memory(addr + (i as u32) * 4, *w)
                .map_err(Self::card_err)?;
        }
        Ok(())
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        self.card
            .read_memory_block(addr, len)
            .map_err(Self::card_err)
    }

    fn set_breakpoint(&mut self, time: u64) -> Result<()> {
        self.card.set_breakpoint_instret(time);
        Ok(())
    }

    fn run_workload(&mut self) -> Result<()> {
        // Synchronous realisation: execution advances in the wait_* calls.
        Ok(())
    }

    fn wait_for_breakpoint(&mut self) -> Result<TargetEvent> {
        self.run_until(true)
    }

    fn wait_for_termination(&mut self) -> Result<TargetEvent> {
        self.run_until(false)
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<StateVector> {
        let _s = tracing::span(names::BLOCK_READ_SCAN_CHAIN);
        let bits = self.card.read_chain(chain).map_err(Self::card_err)?;
        Ok(to_core_bits(&bits))
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &StateVector) -> Result<()> {
        let _s = tracing::span(names::BLOCK_WRITE_SCAN_CHAIN);
        self.card
            .write_chain(chain, &to_thor_bits(bits))
            .map_err(Self::card_err)
    }

    fn observe_state(&mut self) -> Result<StateVector> {
        // All scan chains plus the start of the data region (result areas).
        let mut bytes = Vec::new();
        let mut bit_len = 0;
        for name in ["cpu", "icache", "dcache", "boundary"] {
            let bits = self.card.read_chain(name).map_err(Self::card_err)?;
            // Byte-align each chain for simple concatenation.
            bytes.extend(bits.to_bytes());
            bit_len = bytes.len() * 8;
        }
        let data_start = self.machine_config.memory.code_end;
        let words = self
            .card
            .read_memory_block(data_start, OBSERVE_DATA_WORDS)
            .map_err(Self::card_err)?;
        for w in words {
            bytes.extend(w.to_le_bytes());
        }
        bit_len += OBSERVE_DATA_WORDS * 32;
        Ok(StateVector::from_bytes(bytes, bit_len))
    }

    fn read_outputs(&mut self) -> Result<Vec<u32>> {
        match self.workload.kind {
            WorkloadKind::Batch => self
                .card
                .read_memory_block(self.workload.result.addr, self.workload.result.len)
                .map_err(Self::card_err),
            WorkloadKind::Cyclic { .. } => Ok(self.output_history.clone()),
        }
    }

    fn step_instruction(&mut self) -> Result<Option<TargetEvent>> {
        if self.remaining_budget() == 0 {
            return Ok(Some(TargetEvent::TimedOut));
        }
        match self.card.step() {
            Ok((_info, sync)) => {
                if sync {
                    self.exchange_env()?;
                    self.iterations += 1;
                    if let WorkloadKind::Cyclic { max_iterations, .. } = self.workload.kind {
                        if self.iterations >= max_iterations {
                            return Ok(Some(TargetEvent::IterationsDone));
                        }
                    }
                }
                Ok(None)
            }
            Err(DebugEvent::Halted) => Ok(Some(TargetEvent::Halted)),
            Err(DebugEvent::ErrorDetected(e)) => Ok(Some(TargetEvent::Detected {
                mechanism: e.mechanism().name().to_owned(),
                detail: e.to_string(),
            })),
            Err(DebugEvent::TimedOut) => Ok(Some(TargetEvent::TimedOut)),
            Err(DebugEvent::Breakpoint { .. }) | Err(DebugEvent::IterationSync) => {
                unreachable!("step never reports breakpoints or sync as errors")
            }
        }
    }

    fn static_analysis(&mut self, horizon: u64) -> Result<goofi_core::StaticAnalysis> {
        // Cyclic workloads depend on environment I/O the analyzer's
        // scratch replay cannot reproduce; the runner falls back to
        // trace-based pruning.
        if self.env.is_some() {
            return Err(self.unsupported("staticAnalysis"));
        }
        Ok(goofi_analysis::analyze_thor_program(
            &self.workload.program,
            self.machine_config,
            horizon,
        ))
    }

    fn collect_trace(&mut self) -> Result<Vec<TraceStep>> {
        // Assumes init_test_card + load_workload have run (the framework's
        // prepare step does both).
        let mut trace = Vec::new();
        loop {
            if trace.len() >= TRACE_CAP || self.remaining_budget() == 0 {
                return Ok(trace);
            }
            let time = self.card.machine().instret();
            match self.card.step() {
                Ok((info, sync)) => {
                    trace.push(Self::trace_step(&info, time));
                    if sync {
                        self.exchange_env()?;
                        self.iterations += 1;
                        if let WorkloadKind::Cyclic { max_iterations, .. } = self.workload.kind {
                            if self.iterations >= max_iterations {
                                return Ok(trace);
                            }
                        }
                    }
                }
                Err(DebugEvent::Halted) | Err(DebugEvent::TimedOut) => return Ok(trace),
                Err(DebugEvent::ErrorDetected(e)) => {
                    return Err(GoofiError::Target(format!(
                        "reference trace run hit an error: {e}"
                    )))
                }
                Err(other) => {
                    return Err(GoofiError::Target(format!(
                        "unexpected event during trace: {other:?}"
                    )))
                }
            }
        }
    }

    fn instructions_retired(&mut self) -> Result<u64> {
        Ok(self.card.machine().instret())
    }

    fn iterations_completed(&mut self) -> Result<u32> {
        Ok(self.iterations)
    }

    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        // Cyclic workloads carry an environment simulator whose state lives
        // behind a non-cloneable trait object, so only batch workloads are
        // checkpointable; the engine treats this as "target does not
        // support checkpointing" and falls back to cold starts.
        if self.env.is_some() {
            return Err(self.unsupported("snapshot"));
        }
        let _s = tracing::span(names::BLOCK_SNAPSHOT);
        Ok(TargetSnapshot::new(ThorSnapshot {
            card: self.card.snapshot(),
            iterations: self.iterations,
            output_history: self.output_history.clone(),
        }))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        if self.env.is_some() {
            return Err(self.unsupported("restore"));
        }
        let _s = tracing::span(names::BLOCK_RESTORE);
        let snap = snapshot
            .downcast_ref::<ThorSnapshot>()
            .ok_or_else(|| GoofiError::Target("snapshot is not a Thor snapshot".into()))?;
        self.card.restore(&snap.card);
        self.iterations = snap.iterations;
        self.output_history = snap.output_history.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goofi_core::{reference_run, Campaign, FaultModel, LocationSelector, Technique};
    use goofi_envsim::{DcMotorEnv, SCALE};
    use goofi_workloads::{fibonacci_workload, pid_workload, sort_workload, PidGains};

    fn scifi_campaign(target: &str, n: usize, window: (u64, u64)) -> Campaign {
        Campaign::builder("t-c", target, "w")
            .technique(Technique::Scifi)
            .select(LocationSelector::Chain {
                chain: "cpu".into(),
                field: None,
            })
            .fault_model(FaultModel::BitFlip)
            .window(window.0, window.1)
            .experiments(n)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn reference_run_reproduces_workload_result() {
        let w = sort_workload(8, 5);
        let expected = w.result.expected.clone();
        let mut t = ThorTarget::new("thor", w);
        let c = scifi_campaign("thor", 1, (0, 100));
        let run = reference_run(&mut t, &c).unwrap();
        assert_eq!(run.termination, TargetEvent::Halted);
        assert_eq!(run.outputs, expected);
        assert!(run.instructions > 0);
    }

    #[test]
    fn describe_exposes_chains_and_memory() {
        let t = ThorTarget::new("thor", fibonacci_workload(10));
        let cfg = t.describe();
        assert_eq!(cfg.chains.len(), 4);
        let cpu = cfg.chain("cpu").unwrap();
        assert!(cpu.field("R3").is_some());
        assert!(cpu.field("PC").is_some());
        let boundary = cfg.chain("boundary").unwrap();
        assert!(!boundary.field("ADDR").unwrap().writable);
        assert_eq!(cfg.memory.len(), 2);
    }

    #[test]
    fn scan_roundtrip_through_adapter() {
        let mut t = ThorTarget::new("thor", fibonacci_workload(10));
        t.init_test_card().unwrap();
        t.load_workload().unwrap();
        let bits = t.read_scan_chain("cpu").unwrap();
        t.write_scan_chain("cpu", &bits).unwrap();
        assert_eq!(t.read_scan_chain("cpu").unwrap(), bits);
        assert!(t.read_scan_chain("bogus").is_err());
    }

    #[test]
    fn trace_covers_whole_batch_run() {
        let mut t = ThorTarget::new("thor", fibonacci_workload(5));
        t.init_test_card().unwrap();
        t.load_workload().unwrap();
        let trace = t.collect_trace().unwrap();
        assert!(!trace.is_empty());
        // Trace mentions register and memory locations.
        assert!(trace.iter().any(|s| s.writes.iter().any(|w| w == "R1")));
        assert!(trace
            .iter()
            .any(|s| s.writes.iter().any(|w| w.starts_with("MEM["))));
        // Branches are flagged.
        assert!(trace.iter().any(|s| s.is_branch));
    }

    #[test]
    fn cyclic_workload_runs_iterations_with_env() {
        let w = pid_workload(PidGains::default(), 20);
        let env = Box::new(DcMotorEnv::new(2 * SCALE));
        let mut t = ThorTarget::with_env("thor", w, env);
        let c = scifi_campaign("thor", 1, (0, 100));
        let run = reference_run(&mut t, &c).unwrap();
        assert_eq!(run.termination, TargetEvent::IterationsDone);
        assert_eq!(run.iterations, 20);
        assert_eq!(run.outputs.len(), 20, "one control output per iteration");
    }

    #[test]
    fn cyclic_reference_is_deterministic() {
        let make = || {
            let w = pid_workload(PidGains::default(), 15);
            ThorTarget::with_env("thor", w, Box::new(DcMotorEnv::new(3 * SCALE)))
        };
        let c = scifi_campaign("thor", 1, (0, 100));
        let mut t1 = make();
        let mut t2 = make();
        let r1 = reference_run(&mut t1, &c).unwrap();
        let r2 = reference_run(&mut t2, &c).unwrap();
        assert_eq!(r1.outputs, r2.outputs);
        assert_eq!(r1.state, r2.state);
    }

    #[test]
    fn timeout_budget_reports_timed_out() {
        let w = pid_workload(PidGains::default(), u32::MAX);
        let env = Box::new(DcMotorEnv::new(SCALE));
        let mut t = ThorTarget::with_env("thor", w, env);
        t.set_cycle_budget(10_000);
        let c = scifi_campaign("thor", 1, (0, 100));
        let run = reference_run(&mut t, &c).unwrap();
        assert_eq!(run.termination, TargetEvent::TimedOut);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let w = sort_workload(8, 5);
        let mut t = ThorTarget::new("thor", w);
        t.init_test_card().unwrap();
        t.load_workload().unwrap();
        t.run_workload().unwrap();
        t.set_breakpoint(50).unwrap();
        assert_eq!(
            t.wait_for_breakpoint().unwrap(),
            TargetEvent::BreakpointHit { time: 50 }
        );
        let snap = t.snapshot().unwrap();
        assert_eq!(t.wait_for_termination().unwrap(), TargetEvent::Halted);
        let outputs = t.read_outputs().unwrap();
        let state = t.observe_state().unwrap();
        let instret = t.instructions_retired().unwrap();

        t.restore(&snap).unwrap();
        assert_eq!(t.instructions_retired().unwrap(), 50);
        assert_eq!(t.wait_for_termination().unwrap(), TargetEvent::Halted);
        assert_eq!(t.read_outputs().unwrap(), outputs);
        assert_eq!(t.observe_state().unwrap(), state);
        assert_eq!(t.instructions_retired().unwrap(), instret);
    }

    #[test]
    fn cyclic_targets_do_not_support_snapshots() {
        let w = pid_workload(PidGains::default(), 5);
        let mut t = ThorTarget::with_env("thor", w, Box::new(DcMotorEnv::new(SCALE)));
        assert!(t.snapshot().is_err());
    }

    #[test]
    fn observe_state_sees_result_area() {
        let w = sort_workload(4, 2);
        let mut t = ThorTarget::new("thor", w);
        let c = scifi_campaign("thor", 1, (0, 100));
        let a = reference_run(&mut t, &c).unwrap();
        // Different workload data -> different observable state.
        let w2 = sort_workload(4, 3);
        let mut t2 = ThorTarget::new("thor", w2);
        let b = reference_run(&mut t2, &c).unwrap();
        assert_ne!(a.state, b.state);
    }
}
