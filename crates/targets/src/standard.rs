//! The standard target construction every GOOFI front-end shares.
//!
//! The CLI, the campaign service ([`goofi_core::LocalService`]) and
//! `goofi-server` worker processes all need the same resolution: a
//! stored campaign names a target and a workload, and execution needs a
//! fresh [`TargetSystemInterface`] built from them — with the DC-motor
//! environment simulator attached for cyclic workloads, exactly as the
//! paper's Thor setup runs its control application.

use goofi_core::{Campaign, FactoryProvider, GoofiError, Result, TargetSystemInterface};
use goofi_envsim::{DcMotorEnv, SCALE};
use goofi_workloads::{workload_by_name, WorkloadKind};
use std::sync::Arc;

use crate::{StackProgram, StackVmTarget, ThorTarget};

/// Builds the target adapter a target/workload name pair describes.
///
/// # Errors
///
/// [`GoofiError::Campaign`] for unknown workload names.
pub fn standard_target(target_name: &str, workload_name: &str) -> Result<ThorTarget> {
    let workload = workload_by_name(workload_name)
        .ok_or_else(|| GoofiError::Campaign(format!("unknown workload `{workload_name}`")))?;
    Ok(match workload.kind {
        WorkloadKind::Batch => ThorTarget::new(target_name, workload),
        WorkloadKind::Cyclic { .. } => {
            ThorTarget::with_env(target_name, workload, Box::new(DcMotorEnv::new(5 * SCALE)))
        }
    })
}

/// Data memory words the standard StackVM analysis target carries —
/// enough for every bundled `sumN` program, small enough that the
/// analyzer's location tables stay readable.
const STACKVM_DATA_WORDS: usize = 64;

/// Builds a target for *static analysis* (`goofi analyze --workload`),
/// dispatching on the target name: `stackvm` resolves `sumN` workloads
/// onto a [`StackVmTarget`], anything else resolves through
/// [`standard_target`] onto Thor. Campaign execution keeps going through
/// [`standard_target`] — this entry point exists so both ISAs share the
/// analyzer surface.
///
/// # Errors
///
/// [`GoofiError::Campaign`] for unknown workload names on either target.
pub fn analysis_target(
    target_name: &str,
    workload_name: &str,
) -> Result<Box<dyn TargetSystemInterface>> {
    if target_name == "stackvm" {
        let program = stackvm_workload(workload_name)?;
        return Ok(Box::new(StackVmTarget::new(
            target_name,
            program,
            STACKVM_DATA_WORDS,
        )));
    }
    Ok(Box::new(standard_target(target_name, workload_name)?))
}

/// Resolves a StackVM workload by name (`sumN`).
///
/// # Errors
///
/// [`GoofiError::Campaign`] for anything else.
fn stackvm_workload(name: &str) -> Result<StackProgram> {
    if let Some(n) = name.strip_prefix("sum").and_then(|s| s.parse::<i32>().ok()) {
        if (1..=1_000_000).contains(&n) {
            return Ok(StackProgram::sum(n));
        }
    }
    Err(GoofiError::Campaign(format!(
        "unknown stackvm workload `{name}` (expected sumN)"
    )))
}

/// A factory of identical targets for `campaign`, for multi-worker
/// execution (each worker drives its own instance).
///
/// # Errors
///
/// [`GoofiError::Campaign`] when the campaign's workload is unknown —
/// surfaced here, at submission time, rather than inside a worker.
pub fn standard_factory(
    campaign: &Campaign,
) -> Result<Box<dyn Fn() -> Box<dyn TargetSystemInterface> + Send + Sync>> {
    // Validate eagerly so the factory itself cannot fail.
    standard_target(&campaign.target, &campaign.workload)?;
    let target_name = campaign.target.clone();
    let workload_name = campaign.workload.clone();
    Ok(Box::new(move || {
        Box::new(
            standard_target(&target_name, &workload_name)
                .expect("workload validated at factory construction"),
        )
    }))
}

/// The [`FactoryProvider`] over [`standard_factory`] — what the CLI and
/// the server hand to their campaign services.
pub fn standard_provider() -> FactoryProvider {
    Arc::new(|campaign: &Campaign| standard_factory(campaign))
}
