//! # goofi-targets — target-system adapters for GOOFI-rs
//!
//! The paper's middle layer contains one `TargetSystemInterface` class per
//! supported target, written against the `Framework` template. This crate
//! holds those classes:
//!
//! * [`ThorTarget`] — the Thor RD board (SCIFI via scan chains, SWIFI via
//!   memory), with environment-simulator integration for cyclic workloads;
//! * [`StackVmTarget`] — a structurally different stack machine, proving
//!   the framework's genericity (the same algorithms drive both).
//!
//! # Examples
//!
//! ```
//! use goofi_core::{Campaign, CampaignRunner, FaultModel, LocationSelector, Technique};
//! use goofi_targets::ThorTarget;
//! use goofi_workloads::fibonacci_workload;
//!
//! # fn main() -> Result<(), goofi_core::GoofiError> {
//! let mut target = ThorTarget::new("thor-card", fibonacci_workload(12));
//! let campaign = Campaign::builder("demo", "thor-card", "fib12")
//!     .technique(Technique::Scifi)
//!     .select(LocationSelector::Chain { chain: "cpu".into(), field: None })
//!     .fault_model(FaultModel::BitFlip)
//!     .window(0, 60)
//!     .experiments(20)
//!     .seed(1)
//!     .build()?;
//! let result = CampaignRunner::new(&mut target, &campaign).run()?;
//! println!("{}", result.stats.report());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod stackvm;
mod thor;

pub use stackvm::{StackProgram, StackVmTarget, DEFAULT_STEP_BUDGET};
pub use thor::{ThorTarget, DEFAULT_CYCLE_BUDGET};

mod standard;

pub use standard::{analysis_target, standard_factory, standard_provider, standard_target};
