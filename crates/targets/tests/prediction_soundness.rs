//! Property tests for the propagation engine's prediction contract: a
//! fault the static analysis prunes ([`StaticAnalysis::can_prune`]) or
//! predicts ([`StaticAnalysis::can_predict`]) must, when actually
//! executed, log a row byte-identical to the synthesised one (the
//! reference verdict). This is the soundness the runner's
//! [`RunOptions::prediction`] knob rests on. Exercised on both ISAs with
//! random multi-activation fault lists — the chaining rules
//! (washed-or-untouched consecutive pairs, washed final activation) are
//! exactly what random intermittent faults stress.
//!
//! [`StaticAnalysis::can_prune`]: goofi_core::StaticAnalysis::can_prune
//! [`StaticAnalysis::can_predict`]: goofi_core::StaticAnalysis::can_predict
//! [`RunOptions::prediction`]: goofi_core::RunOptions

use goofi_core::{
    plan_campaign, run_experiment, Campaign, FaultModel, LocationSelector, Pruning, RunOptions,
    TargetSystemInterface, Technique,
};
use goofi_stackvm::Op;
use goofi_targets::{StackProgram, StackVmTarget, ThorTarget};
use goofi_workloads::{crc32_workload, fibonacci_workload, sort_workload};
use proptest::prelude::*;

/// The shared property: plan the campaign with static pruning and
/// prediction on, then execute every pruned/predicted experiment for
/// real and demand the logged record match the synthesised one. Returns
/// how many faults were cross-checked (for the vacuity guard below).
fn assert_synthesised_rows_match_execution(
    target: &mut dyn TargetSystemInterface,
    window: (u64, u64),
    model: FaultModel,
    experiments: usize,
    seed: u64,
) -> (usize, usize) {
    let config = target.describe();
    let campaign = Campaign::builder("prop", config.name.clone(), "w")
        .technique(Technique::Scifi)
        .select(LocationSelector::Chain {
            chain: config.chains[0].name.clone(),
            field: None,
        })
        .fault_model(model)
        .window(window.0, window.1)
        .experiments(experiments)
        .seed(seed)
        .build()
        .expect("campaign builds");
    let options = RunOptions::new()
        .pruning(Pruning::Static)
        .prediction(true)
        .checkpoint(false);
    let plan = match plan_campaign(target, &campaign, &options) {
        Ok(p) => p,
        // The analyzer declined the program, or the fault-free run
        // itself traps (random StackVM programs underflow freely): the
        // runner would fall back to executing everything.
        Err(_) => return (0, 0),
    };
    // A timed-out reference never reaches a terminal state: the faulted
    // re-execution stops `budget` steps after its *last breakpoint*, so
    // its timeout cuts at a different instruction count even when the
    // machine states agree step for step. Verdict synthesis is exactly
    // how the runner sidesteps that; there is no byte-level ground truth
    // to compare against, only the verdict itself.
    if plan.reference.termination == goofi_core::TargetEvent::TimedOut {
        return (0, 0);
    }
    let mut pruned = 0;
    let mut predicted = 0;
    for i in 0..plan.len() {
        if plan.prunable[i] {
            pruned += 1;
        } else if plan.predicted[i] {
            predicted += 1;
        } else {
            continue;
        }
        let synthesised = plan
            .execute(target, &campaign, i)
            .expect("synthesised rows cannot fail");
        let real = run_experiment(target, &campaign, &plan.faults[i])
            .expect("a provably washed fault executes like the reference");
        assert_eq!(
            plan.record(&campaign, i, &synthesised),
            plan.record(&campaign, i, &real),
            "synthesised row diverged from real execution for fault {:?} \
             (prunable={}, predicted={})",
            plan.faults[i],
            plan.prunable[i],
            plan.predicted[i],
        );
    }
    (pruned, predicted)
}

/// A random StackVM instruction (same shape as the static-soundness
/// suite): wild jumps and stack underflows must trap identically whether
/// the verdict was synthesised or executed.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-4i32..8).prop_map(Op::Push),
        (8i32..16).prop_map(Op::Push),
        (0u32..6).prop_map(Op::Load),
        (0u32..6).prop_map(Op::Store),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Dup),
        Just(Op::Drop),
        Just(Op::Swap),
        (0u32..25).prop_map(Op::Jmp),
        (0u32..25).prop_map(Op::Jz),
        (0u32..25).prop_map(Op::Call),
        Just(Op::Ret),
        Just(Op::Halt),
    ]
}

/// Single- or multi-activation fault model for one proptest case.
fn arb_model() -> impl Strategy<Value = FaultModel> {
    prop_oneof![
        Just(FaultModel::BitFlip),
        (2usize..5).prop_map(|activations| FaultModel::Intermittent { activations }),
    ]
}

proptest! {
    #[test]
    fn thor_synthesised_verdicts_match_execution(
        kind in 0u8..3,
        n in 2usize..16,
        wseed in 0u32..16,
        model in arb_model(),
        start in 0u64..200,
        width in 1u64..1_500,
        fseed in 0u64..1_000,
    ) {
        let workload = match kind {
            0 => sort_workload(n, wseed),
            1 => fibonacci_workload(n as u32 + 1),
            _ => crc32_workload(n, wseed),
        };
        let mut target = ThorTarget::new("thor-card", workload);
        assert_synthesised_rows_match_execution(
            &mut target, (start, start + width), model, 30, fseed,
        );
    }

    #[test]
    fn stackvm_synthesised_verdicts_match_execution(
        body in proptest::collection::vec(arb_op(), 1..24),
        model in arb_model(),
        start in 0u64..50,
        width in 1u64..500,
        fseed in 0u64..1_000,
    ) {
        let mut ops = vec![Op::Push(3), Op::Push(1), Op::Push(4), Op::Push(1)];
        ops.extend(body);
        ops.push(Op::Halt);
        let program = StackProgram {
            name: "prop".into(),
            ops,
            result_addrs: vec![1],
        };
        let mut target = StackVmTarget::new("stackvm", program, 8);
        target.set_step_budget(8_000);
        assert_synthesised_rows_match_execution(
            &mut target, (start, start + width), model, 30, fseed,
        );
    }
}

/// Guards the property against vacuity: a campaign shape known to have
/// washout windows beyond the dead set (`R6` in the bubble-sort inner
/// loop) must actually exercise the *predicted* branch, not just the
/// pruned one.
#[test]
fn thor_sort_campaign_exercises_real_predictions() {
    let mut target = ThorTarget::new("thor-card", sort_workload(16, 1));
    let config = target.describe();
    let campaign = Campaign::builder("prop", config.name.clone(), "w")
        .technique(Technique::Scifi)
        .select(LocationSelector::Chain {
            chain: "cpu".into(),
            field: Some("R6".into()),
        })
        .fault_model(FaultModel::BitFlip)
        .window(0, 1100)
        .experiments(120)
        .seed(7)
        .build()
        .unwrap();
    let options = RunOptions::new()
        .pruning(Pruning::Static)
        .prediction(true)
        .checkpoint(false);
    let plan = plan_campaign(&mut target, &campaign, &options).unwrap();
    let predicted = plan.predicted.iter().filter(|&&p| p).count();
    assert!(
        predicted > 0,
        "no fault ever hit a washout-beyond-dead window"
    );
    for i in 0..plan.len() {
        if !plan.prunable[i] && !plan.predicted[i] {
            continue;
        }
        let synthesised = plan.execute(&mut target, &campaign, i).unwrap();
        let real = run_experiment(&mut target, &campaign, &plan.faults[i]).unwrap();
        assert_eq!(
            plan.record(&campaign, i, &synthesised),
            plan.record(&campaign, i, &real),
        );
    }
}
