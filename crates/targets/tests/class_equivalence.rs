//! Property tests for the execution-class soundness contract: every
//! member of a [`ClassKind::Live`] equivalence class, executed directly,
//! must classify exactly like its representative — same termination,
//! outputs, observable state, instruction count and iteration count.
//! This is the property the runner's fan-out rests on when
//! `RunOptions::class_execution` synthesises member rows from one
//! representative execution. Exercised on both ISAs: randomized Thor
//! workload parameters and randomly generated StackVM programs, with
//! randomized injection windows and fault-list seeds.

use goofi_core::{
    generate_fault_list, run_experiment, Campaign, ClassKind, FaultModel, LocationSelector,
    TargetSystemInterface, TriggerPolicy,
};
use goofi_stackvm::Op;
use goofi_targets::{StackProgram, StackVmTarget, ThorTarget};
use goofi_workloads::{crc32_workload, fibonacci_workload, sort_workload};
use proptest::prelude::*;

/// The shared property: group the fault list into execution classes the
/// way the runner does (multi-activation faults join a class at their
/// last activation when the propagation analysis proves the earlier
/// activations washed out or stayed confined), then run each class's
/// representative and every member directly and demand identical
/// observables.
fn assert_members_match_representative(
    target: &mut dyn TargetSystemInterface,
    field_index: usize,
    window: (u64, u64),
    model: FaultModel,
    experiments: usize,
    seed: u64,
) -> usize {
    let config = target.describe();
    // Concentrate the faults on one field of the first chain — spread
    // over the whole chain, two faults almost never hit the same bit and
    // the class structure this test exists to check would stay empty.
    let field = config.chains[0]
        .fields
        .get(field_index % config.chains[0].fields.len().max(1))
        .map(|f| f.name.clone());
    let selectors = vec![LocationSelector::Chain {
        chain: config.chains[0].name.clone(),
        field,
    }];
    let trigger = TriggerPolicy::Window {
        start: window.0,
        end: window.1,
    };
    let faults = generate_fault_list(
        &config,
        &selectors,
        model,
        &trigger,
        experiments,
        seed,
        None,
    )
    .expect("fault list generates");
    let horizon = faults
        .iter()
        .flat_map(|f| f.times.iter().copied())
        .max()
        .unwrap_or(0);

    let mut analysis = match target.static_analysis(horizon) {
        Ok(a) => a,
        // Program shape the analyzer declines: the runner would not
        // build a class plan either.
        Err(_) => return 0,
    };
    // Every fault is eligible, exactly as the runner offers them; the
    // class computation itself rejects multi-activation faults whose
    // earlier activations are not provably washed/confined.
    let eligible = vec![true; faults.len()];
    analysis.compute_execution_classes(&config, &faults, &eligible);

    let campaign = Campaign::builder("prop", config.name.clone(), "w")
        .select(selectors[0].clone())
        .window(window.0, window.1)
        .experiments(experiments)
        .build()
        .expect("campaign builds");

    let mut checked = 0;
    for class in analysis
        .classes
        .iter()
        .filter(|c| c.kind == ClassKind::Live)
    {
        let rep = match run_experiment(target, &campaign, &faults[class.representative]) {
            Ok(run) => run,
            // The workload itself fails under this target (random
            // StackVM programs trap freely before the fault matters):
            // members would fail identically, nothing to compare.
            Err(_) => return checked,
        };
        for &member in &class.members {
            let run = run_experiment(target, &campaign, &faults[member])
                .expect("member executes like its representative");
            let mut expected = rep.clone();
            expected.fault = run.fault.clone();
            assert_eq!(
                run, expected,
                "member {member} of class at {:?} (rep {}) diverged",
                class.window, class.representative
            );
            checked += 1;
        }
    }
    checked
}

/// A random StackVM instruction (same shape as the static-soundness
/// suite): wild jumps and stack underflows must trap identically for
/// every member, never diverge.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-4i32..8).prop_map(Op::Push),
        (8i32..16).prop_map(Op::Push),
        (0u32..6).prop_map(Op::Load),
        (0u32..6).prop_map(Op::Store),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Dup),
        Just(Op::Drop),
        Just(Op::Swap),
        (0u32..25).prop_map(Op::Jmp),
        (0u32..25).prop_map(Op::Jz),
        (0u32..25).prop_map(Op::Call),
        Just(Op::Ret),
        Just(Op::Halt),
    ]
}

proptest! {
    #[test]
    fn thor_class_members_classify_like_their_representative(
        kind in 0u8..3,
        n in 2usize..16,
        wseed in 0u32..16,
        field in 0usize..8,
        activations in 1usize..4,
        start in 0u64..100,
        width in 1u64..800,
        fseed in 0u64..1_000,
    ) {
        let workload = match kind {
            0 => sort_workload(n, wseed),
            1 => fibonacci_workload(n as u32 + 1),
            _ => crc32_workload(n, wseed),
        };
        let model = match activations {
            1 => FaultModel::BitFlip,
            n => FaultModel::Intermittent { activations: n },
        };
        let mut target = ThorTarget::new("thor-card", workload);
        assert_members_match_representative(
            &mut target, field, (start, start + width), model, 30, fseed,
        );
    }

    #[test]
    fn stackvm_class_members_classify_like_their_representative(
        body in proptest::collection::vec(arb_op(), 1..24),
        field in 0usize..8,
        activations in 1usize..4,
        start in 0u64..50,
        width in 1u64..500,
        fseed in 0u64..1_000,
    ) {
        let mut ops = vec![Op::Push(3), Op::Push(1), Op::Push(4), Op::Push(1)];
        ops.extend(body);
        ops.push(Op::Halt);
        let program = StackProgram {
            name: "prop".into(),
            ops,
            result_addrs: vec![1],
        };
        let model = match activations {
            1 => FaultModel::BitFlip,
            n => FaultModel::Intermittent { activations: n },
        };
        let mut target = StackVmTarget::new("stackvm", program, 8);
        target.set_step_budget(8_000);
        assert_members_match_representative(
            &mut target, field, (start, start + width), model, 30, fseed,
        );
    }
}

/// Guards the property against vacuity: a deterministic campaign shape
/// known to produce live classes must actually compare members.
#[test]
fn thor_sort_campaign_exercises_real_classes() {
    let mut target = ThorTarget::new("thor-card", sort_workload(8, 1));
    let config = target.describe();
    let r6 = config.chains[0]
        .fields
        .iter()
        .position(|f| f.name == "R6")
        .expect("cpu chain has R6");
    let checked =
        assert_members_match_representative(&mut target, r6, (0, 300), FaultModel::BitFlip, 60, 9);
    assert!(checked > 0, "no class members were ever compared");
}

/// The multi-activation counterpart: intermittent faults on the sort
/// scratch register must actually join classes (via the washed-prefix
/// rule), and every member must classify like its representative.
#[test]
fn thor_sort_campaign_exercises_multi_activation_classes() {
    let mut target = ThorTarget::new("thor-card", sort_workload(8, 1));
    let config = target.describe();
    let r6 = config.chains[0]
        .fields
        .iter()
        .position(|f| f.name == "R6")
        .expect("cpu chain has R6");
    let checked = assert_members_match_representative(
        &mut target,
        r6,
        (0, 300),
        FaultModel::Intermittent { activations: 2 },
        120,
        9,
    );
    assert!(checked > 0, "no multi-activation member was ever compared");
}
