//! Property tests for the static analyzer's soundness contract: a fault
//! the static analysis prunes must also be pruned by the trace-based
//! liveness analysis built from a fully instrumented reference run
//! (static prune set ⊆ trace prune set). Exercised on both ISAs —
//! randomized Thor workload parameters and randomly generated StackVM
//! programs — with randomized injection windows and fault-list seeds.

use goofi_core::{
    generate_fault_list, FaultModel, LivenessAnalysis, LocationSelector, TargetSystemInterface,
    TriggerPolicy,
};
use goofi_stackvm::Op;
use goofi_targets::{StackProgram, StackVmTarget, ThorTarget};
use goofi_workloads::{crc32_workload, fibonacci_workload, sort_workload};
use proptest::prelude::*;

/// The shared property. The injection window stays far below the step
/// budgets handed to the dynamic side, so the reference trace always
/// covers the static timeline (which the frontends cap at `horizon + 1`
/// replay steps): a static verdict can never rest on execution the trace
/// was truncated away from.
fn assert_static_subset_of_trace(
    target: &mut dyn TargetSystemInterface,
    window: (u64, u64),
    experiments: usize,
    seed: u64,
) {
    let config = target.describe();
    let selectors = vec![LocationSelector::Chain {
        chain: config.chains[0].name.clone(),
        field: None,
    }];
    let trigger = TriggerPolicy::Window {
        start: window.0,
        end: window.1,
    };
    let faults = generate_fault_list(
        &config,
        &selectors,
        FaultModel::BitFlip,
        &trigger,
        experiments,
        seed,
        None,
    )
    .expect("fault list generates");
    let horizon = faults
        .iter()
        .flat_map(|f| f.times.iter().copied())
        .max()
        .unwrap_or(0);

    let analysis = match target.static_analysis(horizon) {
        Ok(a) => a,
        // Program shape the analyzer declines (e.g. an abstract-state
        // blow-up): nothing to check, the runner falls back to tracing.
        Err(_) => return,
    };

    target.init_test_card().unwrap();
    target.load_workload().unwrap();
    let trace = match target.collect_trace() {
        Ok(t) => t,
        // The fault-free run itself traps (random programs underflow
        // freely): there is no reference trace to compare against, and
        // the runner would refuse trace-based pruning for the same
        // reason.
        Err(_) => return,
    };
    let dynamic = LivenessAnalysis::from_trace(&trace);

    for fault in &faults {
        if analysis.can_prune(&config, fault) {
            assert!(
                dynamic.can_prune(&config, fault),
                "static pruned a fault the reference trace keeps: {fault:?}"
            );
        }
    }
}

/// A random StackVM instruction. Jump and call targets may land past the
/// end of the program or mid-loop; stack arithmetic may underflow — all
/// of those must resolve to traps/unknown nodes the analyzer treats as
/// barriers, never to unsound pruning.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-4i32..8).prop_map(Op::Push),
        (8i32..16).prop_map(Op::Push),
        (0u32..6).prop_map(Op::Load),
        (0u32..6).prop_map(Op::Load),
        (0u32..6).prop_map(Op::Store),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Dup),
        Just(Op::Drop),
        Just(Op::Swap),
        (0u32..25).prop_map(Op::Jmp),
        (0u32..25).prop_map(Op::Jz),
        (0u32..25).prop_map(Op::Call),
        Just(Op::Ret),
        Just(Op::Halt),
    ]
}

proptest! {
    #[test]
    fn thor_static_pruning_is_a_subset_of_trace_pruning(
        kind in 0u8..3,
        n in 2usize..20,
        wseed in 0u32..16,
        start in 0u64..200,
        width in 1u64..2_000,
        fseed in 0u64..1_000,
    ) {
        let workload = match kind {
            0 => sort_workload(n, wseed),
            1 => fibonacci_workload(n as u32 + 1),
            _ => crc32_workload(n, wseed),
        };
        let mut target = ThorTarget::new("thor-card", workload);
        assert_static_subset_of_trace(&mut target, (start, start + width), 40, fseed);
    }

    #[test]
    fn stackvm_static_pruning_is_a_subset_of_trace_pruning(
        body in proptest::collection::vec(arb_op(), 1..24),
        start in 0u64..50,
        width in 1u64..500,
        fseed in 0u64..1_000,
    ) {
        // Seed the data stack so the random body does not underflow on
        // its first arithmetic op in most cases (underflowing programs
        // have no reference trace and skip the comparison).
        let mut ops = vec![Op::Push(3), Op::Push(1), Op::Push(4), Op::Push(1)];
        ops.extend(body);
        ops.push(Op::Halt);
        let program = StackProgram {
            name: "prop".into(),
            ops,
            result_addrs: vec![1],
        };
        let mut target = StackVmTarget::new("stackvm", program, 8);
        // Bounds runaway loops while still dwarfing the static replay's
        // `horizon + 1` cap, keeping the trace a superset of the timeline.
        target.set_step_budget(8_000);
        assert_static_subset_of_trace(&mut target, (start, start + width), 40, fseed);
    }
}
