//! Property tests for the snapshot/restore building blocks: after
//! `snapshot → k steps → restore`, re-running the same `k` steps must be
//! bit-identical on every observable surface (events, scan-chain state,
//! retired-instruction counters, outputs) — for both target adapters.

use goofi_core::TargetSystemInterface;
use goofi_targets::{StackProgram, StackVmTarget, ThorTarget};
use goofi_workloads::sort_workload;
use proptest::prelude::*;

/// Steps `k` instructions, recording everything an experiment could
/// observe after each step. Stops early at any debug event (breakpoint,
/// halt, trap) — the truncated tail must then match too.
fn observe_steps(target: &mut dyn TargetSystemInterface, k: u64) -> Vec<String> {
    let mut log = Vec::new();
    for _ in 0..k {
        let event = target.step_instruction().unwrap();
        let state = target.observe_state().unwrap();
        let retired = target.instructions_retired().unwrap();
        let outputs = target.read_outputs().unwrap();
        log.push(format!("{event:?} {state:?} {retired} {outputs:?}"));
        if event.is_some() {
            break;
        }
    }
    log
}

/// The shared property: run to instruction `k1`, snapshot, observe `k2`
/// steps, restore, observe `k2` steps again — the two logs must be equal.
fn snapshot_replays_bit_identically(target: &mut dyn TargetSystemInterface, k1: u64, k2: u64) {
    target.init_test_card().unwrap();
    target.load_workload().unwrap();
    target.set_breakpoint(k1).unwrap();
    target.run_workload().unwrap();
    target.wait_for_breakpoint().unwrap();

    let snapshot = target.snapshot().unwrap();
    let first = observe_steps(target, k2);
    target.restore(&snapshot).unwrap();
    let second = observe_steps(target, k2);
    assert_eq!(first, second, "restored replay diverged (k1={k1}, k2={k2})");
}

proptest! {
    #[test]
    fn thor_snapshot_replay_is_bit_identical(
        k1 in 1u64..80,
        k2 in 1u64..40,
        seed in 0u32..16,
    ) {
        let mut target = ThorTarget::new("thor-card", sort_workload(8, seed));
        snapshot_replays_bit_identically(&mut target, k1, k2);
    }

    #[test]
    fn stackvm_snapshot_replay_is_bit_identical(
        k1 in 1u64..40,
        k2 in 1u64..30,
        n in 1i32..20,
    ) {
        let mut target = StackVmTarget::new("stackvm", StackProgram::sum(n), 16);
        snapshot_replays_bit_identically(&mut target, k1, k2);
    }
}
