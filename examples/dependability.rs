//! From campaign to dependability figure (paper §1: "the coverage can then
//! be used in an analytical model to calculate the system's availability
//! and reliability"): measure detection coverage and latency with a SCIFI
//! campaign, then evaluate single-node and duplex reliability models with
//! the measured coverage and its confidence interval.
//!
//! Run with: `cargo run --release --example dependability`

use goofi_repro::core::{
    detection_latency, duplex_mttf, duplex_reliability_interval, single_node_availability,
    Campaign, CampaignRunner, DependabilityParams, FaultModel, LocationSelector, Technique,
};
use goofi_repro::targets::ThorTarget;
use goofi_repro::workloads::matmul_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: measure coverage with a fault-injection campaign.
    let campaign = Campaign::builder("dep", "thor-card", "matmul4")
        .technique(Technique::Scifi)
        .select(LocationSelector::Chain {
            chain: "icache".into(),
            field: None,
        })
        .select(LocationSelector::Chain {
            chain: "dcache".into(),
            field: None,
        })
        .fault_model(FaultModel::BitFlip)
        .window(0, 3000)
        .experiments(400)
        .seed(12)
        .build()?;
    let mut target = ThorTarget::new("thor-card", matmul_workload(4, 3));
    let result = CampaignRunner::new(&mut target, &campaign).run()?;
    let coverage = result.stats.detection_coverage();
    println!("cache-fault campaign: {}", result.stats.report());

    if let Some(lat) = detection_latency(&result.runs) {
        println!(
            "detection latency (instructions): mean {:.1}, median {}, p95 {}, max {} ({} samples)\n",
            lat.mean, lat.median, lat.p95, lat.max, lat.count
        );
    }

    // Step 2: feed the measured coverage into the analytical models.
    let lambda = 1e-4; // faults per hour (e.g. orbital SEU rate per chip)
    let mission = 5_000.0; // hours
    let (lo, p, hi) = duplex_reliability_interval(coverage, lambda, mission);
    println!("duplex system, lambda = {lambda}/h, {mission} h mission:");
    println!("  R(t) = {p:.6}   [{lo:.6}, {hi:.6}] from the coverage CI");
    let params = DependabilityParams::new(lambda, 0.5, coverage.p);
    println!("  MTTF = {:.0} h", duplex_mttf(params));
    println!(
        "single repairable node availability (mu = 0.5/h): {:.6}",
        single_node_availability(params)
    );
    println!("\nWith perfect coverage the duplex R(t) would be {:.6};", {
        let perfect = DependabilityParams::new(lambda, 0.0, 1.0);
        goofi_repro::core::duplex_reliability(perfect, mission)
    });
    println!("the measured-coverage gap is exactly what the campaign quantifies.");
    Ok(())
}
