//! Quickstart: configure a target, define a campaign, inject faults,
//! analyse — the paper's four phases in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use goofi_repro::core::{
    analyze_campaign, Campaign, CampaignRunner, FaultModel, GoofiStore, LocationSelector,
    TargetSystemInterface, Technique,
};
use goofi_repro::targets::ThorTarget;
use goofi_repro::workloads::sort_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Configuration phase (paper Fig. 5): build the target system — a
    // simulated Thor RD board running a selection-sort workload — and
    // store its description (scan chains, memory map) in the database.
    let mut target = ThorTarget::new("thor-card", sort_workload(16, 42));
    let mut store = GoofiStore::new();
    store.put_target(&target.describe())?;

    // Set-up phase (paper Fig. 6): 200 single bit-flips, injected via the
    // scan chains (SCIFI) into any writable bit of the CPU chain, at a
    // uniformly random instant in the first 2000 instructions.
    let campaign = Campaign::builder("quickstart", "thor-card", "sort16")
        .technique(Technique::Scifi)
        .select(LocationSelector::Chain {
            chain: "cpu".into(),
            field: None,
        })
        .fault_model(FaultModel::BitFlip)
        .window(0, 2000)
        .experiments(200)
        .seed(7)
        .build()?;
    store.put_campaign(&campaign)?;

    // Fault-injection phase (paper Fig. 2): reference run, then one
    // injection per experiment, everything logged to LoggedSystemState.
    let result = CampaignRunner::new(&mut target, &campaign)
        .store(&mut store)
        .run()?;
    println!("== in-memory classification ==");
    println!("{}", result.stats.report());

    // Analysis phase: the automatic analyzer re-derives the same numbers
    // from the database alone.
    let stats = analyze_campaign(&store, "quickstart")?;
    println!("== re-derived from the database ==");
    println!("{}", stats.report());
    assert_eq!(stats.detected_total(), result.stats.detected_total());

    // Ad-hoc SQL still works for "tailor made" analyses (paper §3.5).
    let rs = store
        .database_mut()
        .query("SELECT COUNT(*) AS n FROM LoggedSystemState WHERE campaignName = 'quickstart'")?;
    println!("logged rows (incl. reference): {}", rs.rows[0][0]);
    Ok(())
}
