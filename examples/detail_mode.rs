//! Detail mode and the `parentExperiment` flow (paper §2.3 and §3.3):
//! run a campaign in normal mode, pick an interesting experiment (a
//! fail-silence violation), then re-run just that experiment in detail
//! mode — logging the state after every instruction — and store the
//! detail run with `parentExperiment` pointing at the original.
//!
//! Run with: `cargo run --release --example detail_mode`

use goofi_repro::core::{
    classify, run_experiment, Campaign, CampaignRunner, EscapeKind, ExperimentData,
    ExperimentRecord, FaultModel, GoofiStore, LocationSelector, LogMode, Outcome, StateVector,
    TargetSystemInterface, Technique,
};
use goofi_repro::targets::ThorTarget;
use goofi_repro::workloads::fibonacci_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut store = GoofiStore::new();
    let mut target = ThorTarget::new("thor-card", fibonacci_workload(24));
    store.put_target(&target.describe())?;

    let campaign = Campaign::builder("hunt", "thor-card", "fib24")
        .technique(Technique::Scifi)
        .select(LocationSelector::Chain {
            chain: "cpu".into(),
            field: None,
        })
        .fault_model(FaultModel::BitFlip)
        .window(0, 120)
        .experiments(300)
        .seed(17)
        .build()?;
    store.put_campaign(&campaign)?;
    let result = CampaignRunner::new(&mut target, &campaign)
        .store(&mut store)
        .run()?;

    // Find the first escaped (wrong result) experiment.
    let interesting = result.runs.iter().enumerate().find(|(_, r)| {
        matches!(
            classify(&result.reference, r),
            Outcome::Escaped {
                kind: EscapeKind::WrongOutput
            }
        )
    });
    let Some((index, run)) = interesting else {
        println!("no fail-silence violation in this campaign — try another seed");
        return Ok(());
    };
    let fault = run.fault.clone().expect("injected run");
    println!(
        "experiment #{index} escaped with wrong output {:?} (reference {:?})",
        run.outputs, result.reference.outputs
    );
    println!("fault: {}", fault.describe());

    // Re-run THAT experiment in detail mode: same campaign data, same
    // fault, per-instruction state logging.
    let mut detail_campaign = campaign.clone();
    detail_campaign.log_mode = LogMode::Detail;
    let detail = run_experiment(&mut target, &detail_campaign, &fault)?;
    let trace = detail.detail_trace.as_ref().expect("detail trace");
    println!("detail re-run captured {} state snapshots", trace.len());

    // Error-propagation analysis: when did the faulty state first diverge
    // from the reference detail trace? The faulty trace starts at the
    // injection breakpoint, so align the reference by the injection time.
    let injection_time = fault.times[0] as usize;
    let mut ref_target = ThorTarget::new("thor-card", fibonacci_workload(24));
    let ref_detail = goofi_repro::core::reference_run(&mut ref_target, &detail_campaign)?;
    let ref_trace = ref_detail.detail_trace.as_ref().expect("reference trace");
    let aligned_ref = &ref_trace[injection_time.min(ref_trace.len())..];
    let first_diff = trace
        .iter()
        .zip(aligned_ref)
        .position(|(a, b)| a != b)
        .map(|i| (injection_time + i) as i64)
        .unwrap_or(-1);
    println!("first state divergence at instruction {first_diff}");
    let diverged: usize = trace
        .iter()
        .zip(aligned_ref)
        .filter(|(a, b)| a != b)
        .count();
    println!(
        "diverging snapshots: {diverged}/{} — the propagation footprint",
        trace.len().min(aligned_ref.len())
    );

    // Log the re-run with parentExperiment tracking (paper §2.3).
    let parent_name = format!("hunt/{index:05}");
    store.log_experiment(&ExperimentRecord {
        name: format!("{parent_name}-detail"),
        parent: Some(parent_name.clone()),
        campaign: "hunt".into(),
        data: ExperimentData {
            fault: Some(fault),
            termination: detail.termination.clone(),
            outputs: detail.outputs.clone(),
            iterations: detail.iterations,
            instructions: detail.instructions,
            detail_trace: Some(
                trace
                    .iter()
                    .map(StateVector::as_bytes)
                    .map(<[u8]>::to_vec)
                    .collect(),
            ),
        },
        state_vector: detail.state.as_bytes().to_vec(),
    })?;
    println!("stored detail re-run with parentExperiment = {parent_name}");

    // The foreign keys let us walk back from the detail run to the
    // original campaign data.
    let rs = store.database_mut().query(
        "SELECT l.experimentName, c.nrOfExperiments \
         FROM LoggedSystemState l \
         JOIN LoggedSystemState p ON l.parentExperiment = p.experimentName \
         JOIN CampaignData c ON p.campaignName = c.campaignName",
    )?;
    println!("detail runs tracked through the schema:\n{rs}");
    Ok(())
}
