//! Genericity demonstration (experiment E5, the paper's core claim): the
//! *same* fault-injection algorithm code drives two structurally different
//! target systems — the Thor RD board (register machine with scan chains)
//! and the StackVM (Harvard stack machine with a named debug port).
//!
//! Run with: `cargo run --release --example second_target`

use goofi_repro::core::{
    Campaign, CampaignResult, CampaignRunner, FaultModel, GoofiError, LocationSelector,
    TargetSystemInterface, Technique,
};
use goofi_repro::targets::{StackProgram, StackVmTarget, ThorTarget};
use goofi_repro::workloads::fibonacci_workload;

/// One generic campaign runner used verbatim for both targets: this
/// function body is the portability claim made concrete.
fn inject(
    target: &mut dyn TargetSystemInterface,
    chain: &str,
    window: (u64, u64),
) -> Result<CampaignResult, GoofiError> {
    let campaign = Campaign::builder("generic", target.target_name(), "w")
        .technique(Technique::Scifi)
        .select(LocationSelector::Chain {
            chain: chain.into(),
            field: None,
        })
        .fault_model(FaultModel::BitFlip)
        .window(window.0, window.1)
        .experiments(200)
        .seed(31)
        .build()?;
    CampaignRunner::new(target, &campaign).run()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("same algorithm, two targets: 200 SCIFI bit-flips each\n");

    let mut thor = ThorTarget::new("thor-card", fibonacci_workload(20));
    let thor_result = inject(&mut thor, "cpu", (0, 130))?;
    println!("— Thor RD (register machine, scan chains) —");
    println!("{}", thor_result.stats.report());

    let mut vm = StackVmTarget::new("stackvm", StackProgram::sum(12), 8);
    let vm_result = inject(&mut vm, "debug", (0, 100))?;
    println!("— StackVM (stack machine, debug port) —");
    println!("{}", vm_result.stats.report());

    println!("The detection-mechanism mix differs with the architecture");
    println!("(parity & memory protection vs. stack-bounds & opcode checks),");
    println!("but the tool, the algorithm and the analysis are unchanged —");
    println!("only the TargetSystemInterface implementation differs.");
    Ok(())
}
