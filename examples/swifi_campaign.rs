//! SCIFI vs. SWIFI comparison (experiment E2): the same workload and
//! fault count, injected through scan chains (internal CPU state) versus
//! into the memory image before execution (pre-runtime SWIFI) and during
//! execution (runtime SWIFI, a Section 4 extension).
//!
//! Run with: `cargo run --release --example swifi_campaign`

use goofi_repro::core::{Campaign, CampaignRunner, FaultModel, LocationSelector, Technique};
use goofi_repro::targets::ThorTarget;
use goofi_repro::workloads::crc32_workload;

fn main() {
    let experiments = 300;
    let cases: Vec<(&str, Technique, LocationSelector)> = vec![
        (
            "SCIFI / cpu chain",
            Technique::Scifi,
            LocationSelector::Chain {
                chain: "cpu".into(),
                field: None,
            },
        ),
        (
            "SWIFI pre-runtime / code",
            Technique::SwifiPreRuntime,
            LocationSelector::Memory {
                start: 0,
                words: 64, // the CRC kernel's code
            },
        ),
        (
            "SWIFI pre-runtime / data",
            Technique::SwifiPreRuntime,
            LocationSelector::Memory {
                start: 0x4000,
                words: 17, // crcout + the 16 input words
            },
        ),
        (
            "SWIFI runtime / data",
            Technique::SwifiRuntime,
            LocationSelector::Memory {
                start: 0x4000,
                words: 17,
            },
        ),
    ];

    println!("technique comparison, crc32x16 workload, {experiments} faults each\n");
    println!(
        "{:<26} {:>9} {:>9} {:>8} {:>12}",
        "technique / area", "detected", "escaped", "latent", "overwritten"
    );
    for (label, technique, selector) in cases {
        let campaign = Campaign::builder(label, "thor-card", "crc32x16")
            .technique(technique)
            .select(selector)
            .fault_model(FaultModel::BitFlip)
            .window(0, 4000)
            .experiments(experiments)
            .seed(99)
            .build()
            .expect("valid campaign");
        let mut target = ThorTarget::new("thor-card", crc32_workload(16, 11));
        let stats = CampaignRunner::new(&mut target, &campaign)
            .run()
            .expect("campaign runs")
            .stats;
        println!(
            "{:<26} {:>9} {:>9} {:>8} {:>12}",
            label,
            stats.detected_total(),
            stats.escaped_total(),
            stats.latent,
            stats.overwritten
        );
    }
    println!("\nShape check: code-area SWIFI trips the illegal-instruction and");
    println!("memory-protection detectors far more often than data-area SWIFI;");
    println!("data faults mostly escape as wrong CRCs or vanish (overwritten).");
}
