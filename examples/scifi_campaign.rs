//! SCIFI deep dive (experiment E1's shape): per-location-class campaigns
//! against the Thor RD, reproducing the kind of error-classification
//! breakdown GOOFI was built to produce (cf. Folkesson et al., FTCS-28).
//!
//! Run with: `cargo run --release --example scifi_campaign`

use goofi_repro::core::{
    Campaign, CampaignRunner, CampaignStats, FaultModel, LocationSelector, Technique,
};
use goofi_repro::targets::ThorTarget;
use goofi_repro::workloads::{matmul_workload, Workload};

fn campaign_for(selector: LocationSelector, name: &str, n: usize) -> Campaign {
    Campaign::builder(name, "thor-card", "matmul4")
        .technique(Technique::Scifi)
        .select(selector)
        .fault_model(FaultModel::BitFlip)
        .window(0, 3000)
        .experiments(n)
        .seed(2024)
        .build()
        .expect("valid campaign")
}

fn run_one(workload: Workload, selector: LocationSelector, name: &str) -> CampaignStats {
    let mut target = ThorTarget::new("thor-card", workload);
    let campaign = campaign_for(selector, name, 300);
    CampaignRunner::new(&mut target, &campaign)
        .run()
        .expect("campaign runs")
        .stats
}

fn main() {
    let classes = [
        (
            "register file (R0-R15)",
            LocationSelector::Chain {
                chain: "cpu".into(),
                field: None,
            },
        ),
        (
            "program counter",
            LocationSelector::Chain {
                chain: "cpu".into(),
                field: Some("PC".into()),
            },
        ),
        (
            "PSW flags",
            LocationSelector::Chain {
                chain: "cpu".into(),
                field: Some("PSW".into()),
            },
        ),
        (
            "i-cache",
            LocationSelector::Chain {
                chain: "icache".into(),
                field: None,
            },
        ),
        (
            "d-cache",
            LocationSelector::Chain {
                chain: "dcache".into(),
                field: None,
            },
        ),
    ];

    println!("SCIFI bit-flip campaigns, matmul4 workload, 300 faults per class\n");
    println!(
        "{:<24} {:>9} {:>9} {:>8} {:>12} {:>10}",
        "location class", "detected", "escaped", "latent", "overwritten", "coverage"
    );
    for (label, selector) in classes {
        let stats = run_one(matmul_workload(4, 3), selector, label);
        let cov = stats.detection_coverage();
        println!(
            "{:<24} {:>9} {:>9} {:>8} {:>12} {:>6.2} [{:.2},{:.2}]",
            label,
            stats.detected_total(),
            stats.escaped_total(),
            stats.latent,
            stats.overwritten,
            cov.p,
            cov.lo,
            cov.hi
        );
    }
    println!("\nShape check (per the Thor studies): PC faults are almost always");
    println!("effective and well covered; register-file faults are mostly");
    println!("non-effective; cache faults are dominated by parity detection.");
}
