//! Control-application campaign (experiment E7): a closed-loop PID
//! controller on the target exchanges data with a DC-motor environment
//! simulator every iteration, exactly the harness of the companion paper
//! [12]. Escaped errors here are fail-silence violations: the controller
//! keeps running but drives the plant wrong.
//!
//! Run with: `cargo run --release --example control_app`

use goofi_repro::core::{Campaign, CampaignRunner, FaultModel, LocationSelector, Technique};
use goofi_repro::envsim::{DcMotorEnv, SCALE};
use goofi_repro::targets::ThorTarget;
use goofi_repro::workloads::{pid_workload, PidGains};

fn make_target() -> ThorTarget {
    let workload = pid_workload(PidGains::default(), 60);
    ThorTarget::with_env("thor-card", workload, Box::new(DcMotorEnv::new(5 * SCALE)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reference behaviour: the controller output history is the oracle.
    let campaign = Campaign::builder("control", "thor-card", "pid")
        .technique(Technique::Scifi)
        .select(LocationSelector::Chain {
            chain: "cpu".into(),
            field: None,
        })
        .fault_model(FaultModel::BitFlip)
        .window(0, 2000) // inside the first ~dozens of control iterations
        .experiments(250)
        .seed(5)
        .build()?;

    let mut target = make_target();
    let result = CampaignRunner::new(&mut target, &campaign).run()?;

    println!("closed-loop PID campaign, 60 iterations per experiment\n");
    println!("{}", result.stats.report());

    // The reference run's control trace converges to the setpoint.
    let last = *result.reference.outputs.last().expect("has iterations") as i32;
    println!(
        "reference: {} control outputs, final u = {} (small once settled)",
        result.reference.outputs.len(),
        last
    );

    // Count experiments whose control trajectory diverged from the
    // reference at any iteration — the fail-silence violations.
    let violations = result
        .runs
        .iter()
        .filter(|r| r.outputs != result.reference.outputs)
        .count();
    println!(
        "trajectory deviations (incl. detected-late cases): {violations}/{}",
        result.runs.len()
    );
    println!("\nShape check: most flips are overwritten or detected; a small");
    println!("share escapes as wrong control outputs — the motivation for the");
    println!("executable-assertion work built on GOOFI [12].");
    Ok(())
}
