//! Offline stand-in for the `tracing` facade (see `vendor/README.md`).
//!
//! Implements exactly the surface this workspace uses: a thread-locally
//! scoped dispatcher ([`set_default`] / [`with_default`]), RAII timed
//! spans ([`span`]) and named `u64` events ([`value`]). Instrumented code
//! calls the free functions unconditionally; whether anything happens is
//! decided by the dispatcher installed on the *current thread*.
//!
//! The zero-cost-when-disabled contract: with no dispatcher installed —
//! the default state of every thread — [`span`] and [`value`] perform a
//! single thread-local read and no clock call, no allocation, and no
//! atomic operation. The clock (`Instant::now`) is only read while a
//! dispatcher is installed.
//!
//! Scoping is per-thread (not process-global) so concurrently running
//! campaigns — e.g. tests under `cargo test` — never observe each other's
//! telemetry. Threads spawned while a dispatcher is installed do **not**
//! inherit it; each worker installs its own guard.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Receiver for closed spans and value events. Implementations must be
/// cheap and non-blocking-ish: callbacks run inline on the instrumented
/// thread while it holds no instrumented locks.
pub trait Subscriber: Send + Sync {
    /// A span named `name` closed after running for `nanos` nanoseconds.
    fn on_span(&self, name: &'static str, nanos: u64);
    /// A named `u64` event (a counter increment or a gauge sample).
    fn on_value(&self, name: &'static str, value: u64);
}

/// A cheaply clonable handle to a [`Subscriber`], installable on a thread
/// with [`set_default`] or around a closure with [`with_default`].
#[derive(Clone)]
pub struct Dispatch {
    subscriber: Arc<dyn Subscriber>,
}

impl Dispatch {
    /// Wraps a subscriber in a dispatch handle.
    pub fn new(subscriber: Arc<dyn Subscriber>) -> Dispatch {
        Dispatch { subscriber }
    }
}

impl std::fmt::Debug for Dispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Dispatch { .. }")
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Dispatch>> = const { RefCell::new(None) };
}

/// Installs `dispatch` as the current thread's dispatcher until the
/// returned guard is dropped, at which point the previous dispatcher (if
/// any) is restored. Guards nest like a stack.
#[must_use = "dropping the guard immediately uninstalls the dispatcher"]
pub fn set_default(dispatch: &Dispatch) -> DefaultGuard {
    let prior = CURRENT.with(|cell| cell.replace(Some(dispatch.clone())));
    DefaultGuard { prior }
}

/// Runs `f` with `dispatch` installed on the current thread.
pub fn with_default<R>(dispatch: &Dispatch, f: impl FnOnce() -> R) -> R {
    let _guard = set_default(dispatch);
    f()
}

/// Restores the previously installed dispatcher on drop.
pub struct DefaultGuard {
    prior: Option<Dispatch>,
}

impl Drop for DefaultGuard {
    fn drop(&mut self) {
        let prior = self.prior.take();
        CURRENT.with(|cell| *cell.borrow_mut() = prior);
    }
}

/// Whether the current thread has a dispatcher installed.
pub fn enabled() -> bool {
    CURRENT.with(|cell| cell.borrow().is_some())
}

/// A timed span: created by [`span`], it reports its wall-clock duration
/// to the dispatcher that was current at creation when dropped. Inert
/// (`None` payload, no clock reads) when no dispatcher was installed.
#[must_use = "a span measures until dropped; binding it to `_` drops it immediately"]
pub struct EnteredSpan {
    active: Option<(Dispatch, &'static str, Instant)>,
}

/// Opens a timed span named `name` on the current thread.
pub fn span(name: &'static str) -> EnteredSpan {
    let active = CURRENT.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(|d| (d.clone(), name, Instant::now()))
    });
    EnteredSpan { active }
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        if let Some((dispatch, name, start)) = self.active.take() {
            dispatch
                .subscriber
                .on_span(name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Emits a named `u64` event to the current thread's dispatcher, if any.
pub fn value(name: &'static str, value: u64) {
    CURRENT.with(|cell| {
        if let Some(dispatch) = cell.borrow().as_ref() {
            dispatch.subscriber.on_value(name, value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Log {
        spans: Mutex<Vec<(&'static str, u64)>>,
        values: Mutex<Vec<(&'static str, u64)>>,
    }

    impl Subscriber for Log {
        fn on_span(&self, name: &'static str, nanos: u64) {
            self.spans.lock().unwrap().push((name, nanos));
        }
        fn on_value(&self, name: &'static str, value: u64) {
            self.values.lock().unwrap().push((name, value));
        }
    }

    #[test]
    fn disabled_thread_records_nothing() {
        assert!(!enabled());
        let s = span("noop");
        assert!(s.active.is_none());
        drop(s);
        value("noop", 1); // must not panic, must not record anywhere
    }

    #[test]
    fn guard_scopes_and_nests() {
        let outer = Arc::new(Log::default());
        let inner = Arc::new(Log::default());
        let outer_d = Dispatch::new(outer.clone());
        let inner_d = Dispatch::new(inner.clone());

        let g1 = set_default(&outer_d);
        assert!(enabled());
        drop(span("a"));
        {
            let _g2 = set_default(&inner_d);
            drop(span("b"));
            value("v", 7);
        }
        // Inner guard dropped: outer dispatcher restored.
        drop(span("c"));
        drop(g1);
        assert!(!enabled());

        let outer_spans: Vec<_> = outer.spans.lock().unwrap().iter().map(|s| s.0).collect();
        assert_eq!(outer_spans, ["a", "c"]);
        let inner_spans: Vec<_> = inner.spans.lock().unwrap().iter().map(|s| s.0).collect();
        assert_eq!(inner_spans, ["b"]);
        assert_eq!(*inner.values.lock().unwrap(), [("v", 7)]);
    }

    #[test]
    fn with_default_restores_on_exit() {
        let log = Arc::new(Log::default());
        let d = Dispatch::new(log.clone());
        let out = with_default(&d, || {
            drop(span("w"));
            42
        });
        assert_eq!(out, 42);
        assert!(!enabled());
        assert_eq!(log.spans.lock().unwrap().len(), 1);
    }

    #[test]
    fn span_captures_dispatch_at_creation() {
        let log = Arc::new(Log::default());
        let d = Dispatch::new(log.clone());
        let g = set_default(&d);
        let s = span("outlives");
        drop(g); // dispatcher uninstalled before the span closes
        drop(s); // still reports to the dispatcher captured at creation
        assert_eq!(log.spans.lock().unwrap().len(), 1);
    }

    #[test]
    fn threads_do_not_inherit_dispatch() {
        let log = Arc::new(Log::default());
        let d = Dispatch::new(log.clone());
        let _g = set_default(&d);
        std::thread::spawn(|| assert!(!enabled())).join().unwrap();
    }
}
