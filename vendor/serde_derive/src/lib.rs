//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote`) for the sibling `serde`
//! stub's [`Serialize`]/[`Deserialize`] traits. Supports what this
//! workspace declares: non-generic structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants) with serde's externally-tagged
//! representation, plus the `#[serde(skip)]` and `#[serde(default)]`
//! field attributes. Anything else — generics, other serde attributes —
//! is a compile-time panic, not a silent misbehaviour. See
//! `vendor/README.md` for why these stubs exist.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the stub `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// `#[...]` groups: returns `true` (and records skip/default) for serde
/// attrs.
fn eat_attributes(tokens: &[TokenTree], mut i: usize) -> (usize, bool, bool) {
    let mut skip = false;
    let mut default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let body = g.stream().to_string();
                if let Some(rest) = body.strip_prefix("serde") {
                    // TokenStream stringification spaces tokens unpredictably.
                    let inner: String = rest.chars().filter(|c| !c.is_whitespace()).collect();
                    if inner == "(skip)" {
                        skip = true;
                    } else if inner == "(default)" {
                        default = true;
                    } else {
                        panic!(
                            "serde stub derive: unsupported serde attribute `#[serde{inner}]` \
                             (only #[serde(skip)] and #[serde(default)] are implemented)"
                        );
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, skip, default)
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn eat_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _, _) = eat_attributes(&tokens, 0);
    i = eat_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde stub derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde stub derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, skip, default) = eat_attributes(&tokens, i);
        i = eat_visibility(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Skip the type: everything until a top-level comma. Generic
        // angle brackets contain no commas at punct level visible here?
        // They do (`HashMap<K, V>`), so track `<`/`>` depth explicitly.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                // A trailing comma does not start a new field.
                ',' if angle == 0 && idx + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _, _) = eat_attributes(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ------------------------------------------------------------ generation

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "map.push((\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})));\n",
                    f = f.name
                ));
            }
            (
                name,
                format!(
                    "let mut map: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                     ::std::vec::Vec::new();\n{pushes}::serde::Content::Map(map)"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            // Newtype structs serialize transparently, as in serde.
            (name, "::serde::Serialize::to_content(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Content::Seq(vec![{}])", items.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Content::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_content(f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Content::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Content::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_named_field_builders(ty: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            // #[serde(default)]: a missing key falls back to Default
            // instead of erroring (old snapshots stay readable).
            inits.push_str(&format!(
                "{f}: match ::serde::content_get({source}, \"{f}\") {{\n\
                     Some(v) => ::serde::Deserialize::from_content(v)?,\n\
                     None => ::core::default::Default::default(),\n\
                 }},\n",
                f = f.name
            ));
        } else {
            inits.push_str(&format!(
                "{f}: match ::serde::content_get({source}, \"{f}\") {{\n\
                     Some(v) => ::serde::Deserialize::from_content(v)?,\n\
                     None => return ::std::result::Result::Err(\
                         ::serde::DeError::missing_field(\"{ty}\", \"{f}\")),\n\
                 }},\n",
                f = f.name
            ));
        }
    }
    inits
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let inits = gen_named_field_builders(name, fields, "entries");
            (
                name,
                format!(
                    "let entries = content.as_map().ok_or_else(|| \
                         ::serde::DeError::type_mismatch(\"map for struct {name}\", content))?;\n\
                     ::std::result::Result::Ok({name} {{\n{inits}}})"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let gets: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let seq = content.as_seq().ok_or_else(|| \
                         ::serde::DeError::type_mismatch(\"sequence for {name}\", content))?;\n\
                     if seq.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"expected {arity} elements for {name}, found {{}}\", seq.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    gets.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also tolerated in map form: {"Variant": null}.
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(value)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let seq = value.as_seq().ok_or_else(|| \
                                     ::serde::DeError::type_mismatch(\"sequence for {name}::{vn}\", value))?;\n\
                                 if seq.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"expected {n} elements for {name}::{vn}, found {{}}\", seq.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }},\n",
                            gets.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits =
                            gen_named_field_builders(&format!("{name}::{vn}"), fields, "entries");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let entries = value.as_map().ok_or_else(|| \
                                     ::serde::DeError::type_mismatch(\"map for {name}::{vn}\", value))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match content {{\n\
                         ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                             {unit_arms}\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }},\n\
                         ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                             let (tag, value) = &entries[0];\n\
                             match tag.as_str() {{\n\
                                 {data_arms}\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }}\n\
                         }},\n\
                         other => ::std::result::Result::Err(\
                             ::serde::DeError::type_mismatch(\"enum tag for {name}\", other)),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
