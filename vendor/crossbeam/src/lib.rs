//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the subset of `crossbeam::channel` this workspace uses:
//! unbounded mpmc channels ([`channel::unbounded`]), [`channel::never`],
//! and a [`select!`] macro limited to one or two `recv(..) -> ..` arms
//! (polling-based). See `vendor/README.md` for why these stubs exist.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (messages go to whichever receiver
    /// takes them first).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message like crossbeam's.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty; senders still connected.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel that never delivers and never disconnects — the identity
    /// element for [`select!`].
    pub fn never<T>() -> Receiver<T> {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                // A phantom sender keeps the channel "connected" forever.
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        Receiver { shared }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; `Err` once the channel is empty and dead.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.cv.wait(state).unwrap();
            }
        }
    }

    /// Which arm of a two-channel select fired.
    pub enum Sel2<A, B> {
        /// First `recv` arm.
        A(Result<A, RecvError>),
        /// Second `recv` arm.
        B(Result<B, RecvError>),
    }

    /// Polls two receivers until either yields a message or disconnects.
    /// Backs the two-arm [`select!`] form; biased toward the first arm,
    /// which crossbeam's randomized selection does not guarantee but
    /// callers must tolerate anyway.
    pub fn select2<A, B>(ra: &Receiver<A>, rb: &Receiver<B>) -> Sel2<A, B> {
        loop {
            match ra.try_recv() {
                Ok(v) => return Sel2::A(Ok(v)),
                Err(TryRecvError::Disconnected) => return Sel2::A(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            match rb.try_recv() {
                Ok(v) => return Sel2::B(Ok(v)),
                Err(TryRecvError::Disconnected) => return Sel2::B(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Waits on one or two `recv(receiver) -> result => body` arms.
    ///
    /// Polling stand-in for crossbeam's `select!`: supports exactly the
    /// forms this workspace uses. Bodies execute outside any hidden loop,
    /// so `break`/`continue` inside them bind to the caller's loops.
    #[macro_export]
    macro_rules! select {
        (recv($r:expr) -> $res:pat => $body:expr $(,)?) => {{
            let $res = $crate::channel::Receiver::recv(&$r);
            $body
        }};
        (
            recv($r1:expr) -> $res1:pat => $body1:expr,
            recv($r2:expr) -> $res2:pat => $body2:expr $(,)?
        ) => {
            match $crate::channel::select2(&$r1, &$r2) {
                $crate::channel::Sel2::A(__sel_res) => {
                    let $res1 = __sel_res;
                    $body1
                }
                $crate::channel::Sel2::B(__sel_res) => {
                    let $res2 = __sel_res;
                    $body2
                }
            }
        };
    }

    // `crossbeam::channel::select!` path form.
    pub use crate::select;
}

#[cfg(test)]
mod tests {
    use super::channel::{never, unbounded, TryRecvError};
    use crate::select;
    use std::thread;

    #[test]
    fn fifo_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn never_stays_empty_and_connected() {
        let rx = never::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        let rx2 = rx.clone();
        assert_eq!(rx2.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn select_two_arms() {
        let (tx, rx) = unbounded::<u8>();
        let quiet = never::<u8>();
        tx.send(5).unwrap();
        let hit;
        select! {
            recv(rx) -> msg => { assert_eq!(msg, Ok(5)); hit = 1; },
            recv(quiet) -> _msg => { hit = 2; },
        }
        assert_eq!(hit, 1);

        // Break inside a select body must bind to the caller's loop.
        drop(tx);
        #[allow(clippy::never_loop)]
        loop {
            select! {
                recv(rx) -> msg => { assert!(msg.is_err()); break; },
                recv(quiet) -> _msg => { unreachable!(); },
            }
        }
    }
}
