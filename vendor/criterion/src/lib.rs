//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`].
//! Each benchmark reports `min mean max` per-iteration wall time from
//! `sample_size` samples. No statistics beyond that — enough to compare
//! configurations, which is all the workspace's benches do. See
//! `vendor/README.md` for why these stubs exist.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Benchmark driver: collects samples and prints a summary line.
pub struct Criterion {
    sample_size: usize,
    /// Minimum measured time per sample before trusting the numbers.
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(2),
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for CLI compatibility; no arguments are parsed.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
        };
        f(&mut bencher);
        report(id, &bencher.samples);
        self
    }

    /// Starts a named group; the group prefixes its benchmark ids.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Criterion prints a final summary; this stand-in has nothing to add.
    pub fn final_summary(&mut self) {}
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (criterion compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Measures closures inside one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    target_sample_time: Duration,
}

impl Bencher {
    /// Times `routine`, auto-scaling iterations per sample so each sample
    /// runs at least the target duration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and iteration-count calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: plain and `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn group_prefixes_ids_and_macros_expand() {
        let mut c = Criterion::default().sample_size(2);
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("one", |b| b.iter(|| 1 + 1));
            g.finish();
        }

        fn target(c: &mut Criterion) {
            c.bench_function("macro_target", |b| b.iter(|| 2 + 2));
        }
        criterion_group!(plain, target);
        criterion_group! {
            name = configured;
            config = Criterion::default().sample_size(2);
            targets = target
        }
        plain();
        configured();
    }
}
