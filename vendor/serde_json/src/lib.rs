//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the sibling `serde` stub's [`Content`] tree to JSON text and
//! parses JSON text back. Provides the API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and an [`Error`]
//! type. Map entries keep their order, so output is deterministic and
//! round-trips byte-identically. See `vendor/README.md` for why these
//! stubs exist.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------- writer

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let text = v.to_string();
        out.push_str(&text);
        // Keep floats recognizable as floats when they round-trip.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json errors on non-finite floats; this workspace
        // never serializes them, and `null` keeps output well-formed.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos.saturating_sub(1)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos.saturating_sub(1)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(byte) => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(byte);
                    let end = start + len;
                    if len == 1 {
                        out.push(byte as char);
                    } else {
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                        let s = std::str::from_utf8(slice)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(Error::new("invalid \\u escape")),
            };
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-42i32).unwrap(), "-42");
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let tricky = "a \"quote\" \\ slash \n tab\t nul\u{0} é 日本";
        let json = to_string(&tricky.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), tricky);
        assert_eq!(from_str::<String>(r#""é 😀""#).unwrap(), "é 😀");
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u32, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), xs);

        let nested: Vec<Vec<String>> = vec![vec!["a".into()], vec![]];
        let json = to_string(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<String>>>(&json).unwrap(), nested);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u8>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("[]").is_err());
        assert!(from_str::<u8>("1 garbage").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_reparses() {
        let value = vec![vec![1u8, 2], vec![3]];
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), value);
    }
}
