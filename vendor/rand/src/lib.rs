//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand 0.8` API this workspace uses —
//! [`RngCore`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer ranges, and [`rngs::StdRng`] / [`rngs::SmallRng`] — on top of a
//! xoshiro256++ generator seeded through SplitMix64. The streams do **not**
//! match upstream `rand` (which uses ChaCha12 for `StdRng`); they are
//! deterministic per seed, which is all the workspace relies on.
//! See `vendor/README.md` for why these stubs exist.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
    /// Builds a generator from OS "entropy". Offline stand-in: a fixed
    /// seed — deterministic, which suits reproducible experiments.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e3779b97f4a7c15)
    }
}

/// High-level sampling methods (the `rand 0.8` extension trait).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256++ state shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// Deterministic "standard" generator (xoshiro256++ here, not ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    /// Small fast generator — same engine as [`StdRng`] in this stand-in.
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0u64..=u64::MAX - 1),
                b.gen_range(0u64..=u64::MAX - 1)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX - 1);
    }
}
