//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Implements the subset of the API this workspace uses: [`Mutex`],
//! [`MutexGuard`], [`Condvar`] and [`RwLock`], with `parking_lot`'s
//! signatures (no lock poisoning, `Condvar::wait` takes `&mut MutexGuard`).
//! See `vendor/README.md` for why these stubs exist.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as st;

/// A mutex that never poisons: a panic while holding the lock simply
/// releases it, as in `parking_lot`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: st::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<st::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: st::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(st::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(st::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: st::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: st::Condvar::new(),
        }
    }

    /// Blocks until notified. Unlike `std`, takes the guard by `&mut` and
    /// reacquires the lock in place (the `parking_lot` signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter; returns whether a thread was woken (always `false`
    /// here — `std` does not report it, and no caller relies on it).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all waiters; returns the number woken (always 0 — see
    /// [`Condvar::notify_one`]).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: st::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(st::RwLockReadGuard<'a, T>);
/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(st::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: st::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn no_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still lockable
    }
}
