//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based data model, this stand-in serializes
//! through an owned [`Content`] tree: [`Serialize`] lowers a value into a
//! `Content`, [`Deserialize`] rebuilds one from it. `serde_json` (the
//! sibling stub) renders `Content` to and from JSON text. The derive
//! macros in `serde_derive` generate impls of these traits with serde's
//! externally-tagged enum representation, so persisted files look like
//! real serde_json output. Only the API surface this workspace uses is
//! provided. See `vendor/README.md` for why these stubs exist.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data tree every value serializes through.
///
/// Maps preserve insertion order (a `Vec` of pairs) so round-tripped JSON
/// keeps its field order and byte-identical snapshots stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (all negatives, and positives that fit).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Ordered map with string keys.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks up `key` in derive-generated map entries.
pub fn content_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a caller-provided message.
    pub fn custom(message: impl fmt::Display) -> Self {
        DeError {
            message: message.to_string(),
        }
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError {
            message: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// The content tree had the wrong shape.
    pub fn type_mismatch(expected: &str, got: &Content) -> Self {
        DeError {
            message: format!("expected {expected}, found {}", got.kind()),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Content`] tree.
pub trait Serialize {
    /// Builds the content tree for `self`.
    fn to_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, or explains why the tree does not fit.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    other => return Err(DeError::type_mismatch("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{} out of range for {}", wide, stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    other => return Err(DeError::type_mismatch("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{} out of range for {}", wide, stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(DeError::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::type_mismatch("single-character string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::type_mismatch("sequence", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_content(content)?;
        let len = vec.len();
        vec.try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::type_mismatch("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sorted for deterministic output (HashMap order is unstable).
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::type_mismatch("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| DeError::type_mismatch("tuple sequence", content))?;
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, found sequence of {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_round_trip_with_widening() {
        assert_eq!(u8::from_content(&42u64.to_content()), Ok(42u8));
        assert!(u8::from_content(&300u64.to_content()).is_err());
        assert_eq!(
            i64::from_content(&Content::U64(u64::MAX >> 1)).unwrap(),
            (u64::MAX >> 1) as i64
        );
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn option_and_containers() {
        let v: Option<u32> = None;
        assert_eq!(v.to_content(), Content::Null);
        let round: Option<u32> = Deserialize::from_content(&Content::Null).unwrap();
        assert_eq!(round, None);

        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&xs.to_content()).unwrap(), xs);

        let arr = [7u8, 8, 9];
        assert_eq!(<[u8; 3]>::from_content(&arr.to_content()).unwrap(), arr);

        let t = (1u8, "x".to_string());
        let c = t.to_content();
        assert_eq!(<(u8, String)>::from_content(&c).unwrap(), t);
    }

    #[test]
    fn map_order_is_preserved() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        // BTreeMap iterates sorted; Content::Map keeps that order.
        assert_eq!(
            m.to_content(),
            Content::Map(vec![
                ("a".into(), Content::I64(1)),
                ("b".into(), Content::I64(2)),
            ])
        );
    }
}
