//! Offline stand-in for the `proptest` crate.
//!
//! Random-sampling property testing without shrinking: each `proptest!`
//! test draws `PROPTEST_CASES` (default 64) deterministic samples from its
//! strategies and fails with the offending inputs on the first violated
//! property. Supports the strategy combinators this workspace uses:
//! integer ranges, `any::<T>()`, `Just`, tuples, `prop_map`, `prop_oneof!`,
//! `proptest::collection::{vec, hash_set}`, and string strategies from a
//! small regex subset (`[class]{m,n}`-style). No shrinking: a failure
//! reports the raw sample. See `vendor/README.md` for why these stubs
//! exist.

use std::fmt;

pub mod strategy;

/// Deterministic RNG handed to strategies.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Error raised by `prop_assert!` family inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// A failed property with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-test deterministic generator; seed varies per test name so
    /// different properties explore different corners.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut hash = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(hash)
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Size specification: an exact length or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`; may under-fill when the element domain
    /// is too small to reach the sampled size (no retry storm).
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` aiming for `size` elements drawn from `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = HashSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias so `prop::collection::vec(..)` works like upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs `PROPTEST_CASES` samples of a property; used by `proptest!`.
#[doc(hidden)]
pub fn run_cases<F>(test_name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng, u32) -> Result<(), CaseFailure>,
{
    let mut rng = test_runner::rng_for(test_name);
    let cases = test_runner::case_count();
    for index in 0..cases {
        if let Err(failure) = case(&mut rng, index) {
            panic!(
                "property `{test_name}` failed at case {index}/{cases}: {}\n  inputs: {}",
                failure.error, failure.inputs
            );
        }
    }
}

/// A failed case: the assertion message plus the sampled inputs.
#[doc(hidden)]
pub struct CaseFailure {
    /// What went wrong.
    pub error: test_runner::TestCaseError,
    /// Debug rendering of the sampled arguments.
    pub inputs: String,
}

impl fmt::Debug for CaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CaseFailure({})", self.error)
    }
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__rng, __case| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                // Rendered before the body runs: the body may move the args.
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(concat!(stringify!($arg), " = "));
                    __inputs.push_str(&format!("{:?}; ", $arg));
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome.map_err(|error| $crate::CaseFailure {
                    error,
                    inputs: __inputs,
                })
            });
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]`: uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
