//! Strategies: deterministic samplers for the `proptest` stand-in.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_filter`] combinator.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// Type-erased strategy (what [`crate::prop_oneof!`] collects).
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample_dyn(rng)
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// `any::<T>()`: the full domain of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Primitive types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty : $w:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $w as $t
            }
        }
    )*};
}

impl_arbitrary_int!(
    u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
    i8: u8, i16: u16, i32: u32, i64: u64, isize: usize
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII with a sprinkle of wider code points, like
        // upstream's bias toward "interesting" characters.
        let roll = rng.gen_range(0u8..10);
        if roll < 8 {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0xa0u32..0xd7ff)).unwrap_or('\u{fffd}')
        }
    }
}

// ------------------------------------------------- regex-string strategies

/// `&str` is a strategy: the string is a regex (subset) describing the
/// output, e.g. `"[a-zA-Z0-9 ']{0,20}"`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

#[derive(Debug)]
enum RegexAtom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug)]
struct RegexPiece {
    atom: RegexAtom,
    min: usize,
    max: usize,
}

/// Supported subset: literal chars, `[...]` classes with ranges and
/// literals, and quantifiers `{n}`, `{m,n}`, `*`, `+`, `?`.
fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut class_chars = Vec::new();
                for d in chars.by_ref() {
                    if d == ']' {
                        break;
                    }
                    class_chars.push(d);
                }
                let mut i = 0;
                while i < class_chars.len() {
                    if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
                        ranges.push((class_chars[i], class_chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((class_chars[i], class_chars[i]));
                        i += 1;
                    }
                }
                RegexAtom::Class(ranges)
            }
            '\\' => RegexAtom::Literal(chars.next().unwrap_or('\\')),
            c => RegexAtom::Literal(c),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(RegexPiece { atom, min, max });
    }
    pieces
}

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse_regex(pattern) {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.atom {
                RegexAtom::Literal(c) => out.push(*c),
                RegexAtom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    out.push(char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_tuples_and_map() {
        let mut rng = rng_for("ranges");
        let s = (0u8..10, 5i64..=6).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((5..16).contains(&v));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = rng_for("union");
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), (5u8..7).boxed()]);
        let mut seen = [false; 7];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[5] && seen[6]);
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = rng_for("regex");
        for _ in 0..100 {
            let s = "[a-zA-Z]{1,12}".sample(&mut rng);
            assert!((1..=12).contains(&s.chars().count()), "bad len: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphabetic()), "bad: {s:?}");

            let t = "[a-zA-Z0-9 ']{0,20}".sample(&mut rng);
            assert!(t.chars().count() <= 20);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '\''));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = rng_for("collections");
        for _ in 0..50 {
            let v = crate::collection::vec(any::<u32>(), 16).sample(&mut rng);
            assert_eq!(v.len(), 16);
            let w = crate::collection::vec(0u8..5, 0..4).sample(&mut rng);
            assert!(w.len() < 4);
            let s = crate::collection::hash_set(0i64..100, 0..30).sample(&mut rng);
            assert!(s.len() < 30);
        }
    }
}
