//! Umbrella crate for the GOOFI-rs workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `README.md` for the architecture overview.
pub use goofi_core as core;
pub use goofi_db as db;
pub use goofi_envsim as envsim;
pub use goofi_stackvm as stackvm;
pub use goofi_targets as targets;
pub use goofi_workloads as workloads;
pub use thor_rd as thor;
