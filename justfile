# GOOFI-rs task runner. `just` with no arguments runs the tier-1 gate.

# Build everything and run the full test suite (the CI gate).
default: build test

# Release build of every workspace target (libs, bins, tests, benches).
build:
    cargo build --release --workspace --all-targets

# Full test suite, quiet output.
test:
    cargo test -q --workspace

# Lint gate: clippy must be warning-free across all targets.
lint:
    cargo clippy --workspace --all-targets -- -D warnings

# Everything CI runs, in CI's order.
ci: build test lint

# E8 orchestration ablation; refreshes BENCH_e8.json at the repo root.
bench-e8:
    cargo bench -p goofi-bench --bench e8_runner_scaling

# E9 checkpoint-vs-cold-start; refreshes BENCH_e9.json at the repo root.
bench-e9:
    cargo bench -p goofi-bench --bench e9_checkpoint

# E10 telemetry overhead (asserts the <2% disabled budget); refreshes
# BENCH_e10.json at the repo root.
bench-e10:
    cargo bench -p goofi-bench --bench e10_telemetry_overhead

# Static workload analysis (CFG, pruning windows, lints) for a bundled
# workload, with no reference run. Add `--json` by hand for machine output.
analyze workload="sort16":
    cargo run --release -p goofi-cli -- analyze --workload {{workload}}

# E11 static-vs-trace pruning comparison (asserts the ≥20% gate);
# refreshes BENCH_e11.json at the repo root.
bench-e11:
    cargo bench -p goofi-bench --bench e11_static_pruning

# E12 class execution + predecoded interpreter (asserts the ≥1.5x gate
# and byte-identical verdicts); refreshes BENCH_e12.json at the repo root.
bench-e12:
    cargo bench -p goofi-bench --bench e12_class_execution

# E13 paged storage engine vs seed JSON backend (asserts the ≥10x
# sustained-append gate and index-beats-scan); refreshes BENCH_e13.json
# at the repo root. Scale with GOOFI_E13_ROWS / GOOFI_E13_GATE.
bench-e13:
    cargo bench -p goofi-bench --bench e13_storage

# E14 multi-process campaign service vs in-process runner (asserts every
# configuration lands a byte-identical database; speedup is
# informational — it depends on host cores); refreshes BENCH_e14.json at
# the repo root. Scale with GOOFI_E14_EXPERIMENTS.
bench-e14:
    cargo bench -p goofi-bench --bench e14_server

# E15 fault-propagation prediction (asserts the ≥15% prune+predict
# gate, predicted ≥ 1, and byte-identical synthesised verdicts);
# refreshes BENCH_e15.json at the repo root.
bench-e15:
    cargo bench -p goofi-bench --bench e15_propagation

# The multi-process determinism + crash-recovery suite on its own
# (kill -9 mid-campaign, cancel/resume, byte-identity per worker count).
test-server:
    cargo test --release --test server_recovery
